#include "gex/rma_am.hpp"

#include <cassert>
#include <cstring>
#include <thread>

#include "arch/atomics.hpp"
#include "arch/spinlock.hpp"
#include "arch/timer.hpp"
#include "gex/handlers.hpp"
#include "gex/runtime.hpp"

namespace gex {

namespace {

// Largest request/reply record the protocol sends inline. On shared-memory
// transports that is the configured eager cap — anything larger goes
// through pooled shared-heap staging. On transports whose peers cannot
// read this rank's memory (socket) staging is meaningless, so everything
// up to the wire-record limit ships inline instead.
std::size_t inline_cutoff(AmEngine* am) {
  return am->transport().shared_memory() ? am->eager_max() : am->inline_max();
}

}  // namespace

namespace {

// Wire record headers. Always memcpy'd to/from the ring (record payloads
// are only 4-byte aligned). Cookies are initiator-local ids; `dst`/`addr`/
// `buf` fields are (segment id, offset) wire addresses (gex/segment.hpp)
// encoded by the sender and resolved against the *receiver's own* mapping
// at decode — no record byte depends on the peer's virtual-address layout,
// which is what lets the shm-file transport (and a future socket backend)
// carry these records between unrelated mappings. Every header carries
// `nacks` and `nracks`: the counts of piggybacked request-ack cookies and
// staged-reply consumption-ack cookies (u64 each) laid out immediately
// after the header — acks first, then racks — ahead of any descriptors or
// payload, so reverse-direction traffic retires the sender's completions
// and unpins its staged reply buffers for free.
struct PutHdr {
  std::uint64_t cookie;
  std::uint64_t dst;
  std::uint32_t nacks;
  std::uint32_t nracks;
};
struct GetHdr {
  std::uint64_t cookie;
  std::uint64_t src;
  std::uint64_t bytes;
  std::uint32_t nacks;
  std::uint32_t nracks;
};
struct FragHdr {
  std::uint64_t cookie;
  std::uint32_t nfrags;
  std::uint32_t nacks;
  std::uint32_t nracks;
  std::uint32_t reserved;
};
// Pool-staged put: the payload sits in an initiator-owned bounce buffer in
// the shared heap; only this descriptor crosses the ring. The target copies
// and acks; the ack hands the buffer back to the initiator's pool. The
// staged-frag variant packs [nfrags × FragDesc][payload] into the buffer.
struct PutStagedHdr {
  std::uint64_t cookie;
  std::uint64_t dst;
  std::uint64_t buf;
  std::uint64_t bytes;
  std::uint32_t nacks;
  std::uint32_t nracks;
};
struct FragStagedHdr {
  std::uint64_t cookie;
  std::uint64_t buf;
  std::uint64_t payload_bytes;
  std::uint32_t nfrags;
  std::uint32_t nacks;
  std::uint32_t nracks;
  std::uint32_t reserved;
};
struct FragDesc {
  std::uint64_t addr;
  std::uint64_t bytes;
};
// Standalone multi-ack record: every ack (and rack) owed to one target,
// batched per poll into one ring transaction.
struct AckHdr {
  std::uint32_t nacks;
  std::uint32_t nracks;
};
struct RepHdr {
  std::uint64_t cookie;
  std::uint32_t nacks;
  std::uint32_t nracks;
};
// Pool-staged GET reply (contiguous and frag-gather variants share the
// layout; distinct handlers keep the wire self-describing): the gathered
// payload sits in a target-owned reply buffer in the shared heap; only
// this descriptor crosses the ring. The initiator scatters out of the
// buffer and owes a rack for `cookie`; the rack hands the buffer back to
// the target's reply pool.
struct RepStagedHdr {
  std::uint64_t cookie;
  std::uint64_t buf;
  std::uint64_t bytes;
  std::uint32_t nacks;
  std::uint32_t nracks;
};

template <typename H>
H read_hdr(const void* p) {
  H h;
  std::memcpy(&h, p, sizeof h);
  return h;
}

constexpr std::size_t ack_bytes(std::size_t nacks) {
  return nacks * sizeof(std::uint64_t);
}

std::byte* write_acks(std::byte* q, const std::vector<std::uint64_t>& acks) {
  if (!acks.empty()) std::memcpy(q, acks.data(), ack_bytes(acks.size()));
  return q + ack_bytes(acks.size());
}

// Both piggyback namespaces of one drained OwedAcks: total wire bytes, and
// the writer (acks first, then racks — the order every handler consumes).
template <typename OA>
std::size_t oa_bytes(const OA& oa) {
  return ack_bytes(oa.acks.size() + oa.racks.size());
}
template <typename OA>
std::byte* write_oa(std::byte* q, const OA& oa) {
  q = write_acks(q, oa.acks);
  return write_acks(q, oa.racks);
}

RmaAmProtocol& proto() {
  auto* r = self();
  assert(r && r->rma_am && "AM RMA record outside an SPMD region");
  return *r->rma_am;
}

}  // namespace

// Handlers run inside the target's AmEngine::poll: they may copy bytes and
// record work, but must not inject (see header comment). Registered in the
// gex handler registry at static initialization via am_handler<>, so every
// rank — thread or fork — agrees on the indices.
struct RmaAmHandlers {
  // Retires `n` piggybacked ack cookies and returns the cursor past them.
  static const std::byte* consume_acks(RmaAmProtocol& p, const std::byte* q,
                                       std::uint32_t n) {
    for (std::uint32_t i = 0; i < n; ++i) {
      std::uint64_t cookie;
      std::memcpy(&cookie, q + i * sizeof cookie, sizeof cookie);
      p.completed_.push_back(cookie);
    }
    return q + ack_bytes(n);
  }

  // Retires `n` piggybacked rack cookies from rank `src` — each unpins a
  // staged reply buffer this rank sent to src — and returns the cursor past
  // them. recycle_reply only moves a buffer between local containers (or
  // frees it), so this is handler-safe.
  static const std::byte* consume_racks(RmaAmProtocol& p, int src,
                                        const std::byte* q,
                                        std::uint32_t n) {
    if (n == 0) return q;
    auto& pr = p.peer(src);
    for (std::uint32_t i = 0; i < n; ++i) {
      std::uint64_t cookie;
      std::memcpy(&cookie, q + i * sizeof cookie, sizeof cookie);
      p.recycle_reply(pr, cookie);
    }
    return q + ack_bytes(n);
  }

  static void on_put(AmContext& cx) {
    auto& p = proto();
    const auto h = read_hdr<PutHdr>(cx.data);
    const auto* q = static_cast<const std::byte*>(cx.data) + sizeof(PutHdr);
    q = consume_acks(p, q, h.nacks);
    q = consume_racks(p, cx.src, q, h.nracks);
    const std::size_t bytes =
        cx.size - sizeof(PutHdr) - ack_bytes(h.nacks) - ack_bytes(h.nracks);
    if (bytes)
      std::memcpy(reinterpret_cast<void*>(
                      static_cast<std::uintptr_t>(p.wire_dec(h.dst))),
                  q, bytes);
    p.owe_ack(cx.src, h.cookie);
    ++p.stats_.puts_handled;
  }

  static void on_put_staged(AmContext& cx) {
    // h.buf names a bounce buffer in the *initiator's* heap — readable
    // here only because the transport cross-maps it. A staged record
    // arriving over a transport without that property (socket) is a
    // protocol bug: inline_cutoff should have kept the payload inline.
    assert(cx.engine->transport().shared_memory() &&
           "staged put crossed a non-shared-memory transport");
    auto& p = proto();
    const auto h = read_hdr<PutStagedHdr>(cx.data);
    const auto* q = consume_acks(
        p, static_cast<const std::byte*>(cx.data) + sizeof(PutStagedHdr),
        h.nacks);
    consume_racks(p, cx.src, q, h.nracks);
    std::memcpy(
        reinterpret_cast<void*>(
            static_cast<std::uintptr_t>(p.wire_dec(h.dst))),
        reinterpret_cast<const void*>(
            static_cast<std::uintptr_t>(p.wire_dec(h.buf))),
        static_cast<std::size_t>(h.bytes));
    p.owe_ack(cx.src, h.cookie);
    ++p.stats_.puts_handled;
  }

  static void on_put_frag_staged(AmContext& cx) {
    assert(cx.engine->transport().shared_memory() &&
           "staged frag-put crossed a non-shared-memory transport");
    auto& p = proto();
    const auto h = read_hdr<FragStagedHdr>(cx.data);
    const auto* q = consume_acks(
        p, static_cast<const std::byte*>(cx.data) + sizeof(FragStagedHdr),
        h.nacks);
    consume_racks(p, cx.src, q, h.nracks);
    const auto* descs = reinterpret_cast<const std::byte*>(
        static_cast<std::uintptr_t>(p.wire_dec(h.buf)));
    const auto* payload = descs + h.nfrags * sizeof(FragDesc);
    std::size_t off = 0;
    for (std::uint32_t i = 0; i < h.nfrags; ++i) {
      const auto d = read_hdr<FragDesc>(descs + i * sizeof(FragDesc));
      if (d.bytes)
        std::memcpy(reinterpret_cast<void*>(
                        static_cast<std::uintptr_t>(p.wire_dec(d.addr))),
                    payload + off, static_cast<std::size_t>(d.bytes));
      off += static_cast<std::size_t>(d.bytes);
    }
    assert(off == static_cast<std::size_t>(h.payload_bytes));
    p.owe_ack(cx.src, h.cookie);
    ++p.stats_.puts_handled;
  }

  static void on_put_frag(AmContext& cx) {
    auto& p = proto();
    const auto h = read_hdr<FragHdr>(cx.data);
    const auto* descs =
        consume_acks(p, static_cast<const std::byte*>(cx.data) +
                            sizeof(FragHdr),
                     h.nacks);
    descs = consume_racks(p, cx.src, descs, h.nracks);
    const auto* payload = descs + h.nfrags * sizeof(FragDesc);
    std::size_t off = 0;
    for (std::uint32_t i = 0; i < h.nfrags; ++i) {
      const auto d = read_hdr<FragDesc>(descs + i * sizeof(FragDesc));
      if (d.bytes)
        std::memcpy(reinterpret_cast<void*>(
                        static_cast<std::uintptr_t>(p.wire_dec(d.addr))),
                    payload + off, static_cast<std::size_t>(d.bytes));
      off += static_cast<std::size_t>(d.bytes);
    }
    assert(sizeof(FragHdr) + ack_bytes(h.nacks) + ack_bytes(h.nracks) +
               h.nfrags * sizeof(FragDesc) + off ==
           cx.size);
    p.owe_ack(cx.src, h.cookie);
    ++p.stats_.puts_handled;
  }

  static void on_get(AmContext& cx) {
    auto& p = proto();
    const auto h = read_hdr<GetHdr>(cx.data);
    const auto* q = consume_acks(
        p, static_cast<const std::byte*>(cx.data) + sizeof(GetHdr), h.nacks);
    consume_racks(p, cx.src, q, h.nracks);
    // Resolve at decode; the gather list in replies_ holds this rank's own
    // raw addresses from here on.
    p.replies_.push_back(
        {cx.src, h.cookie,
         {RmaAmProtocol::Frag{p.wire_dec(h.src), h.bytes}}, false});
    ++p.stats_.gets_handled;
  }

  static void on_get_frag(AmContext& cx) {
    auto& p = proto();
    const auto h = read_hdr<FragHdr>(cx.data);
    const auto* descs =
        consume_acks(p, static_cast<const std::byte*>(cx.data) +
                            sizeof(FragHdr),
                     h.nacks);
    descs = consume_racks(p, cx.src, descs, h.nracks);
    std::vector<RmaAmProtocol::Frag> gather;
    gather.reserve(h.nfrags);
    for (std::uint32_t i = 0; i < h.nfrags; ++i) {
      const auto d = read_hdr<FragDesc>(descs + i * sizeof(FragDesc));
      gather.push_back({p.wire_dec(d.addr), d.bytes});
    }
    p.replies_.push_back({cx.src, h.cookie, std::move(gather), true});
    ++p.stats_.gets_handled;
  }

  static void on_ack(AmContext& cx) {
    auto& p = proto();
    const auto h = read_hdr<AckHdr>(cx.data);
    const auto* q = consume_acks(
        p, static_cast<const std::byte*>(cx.data) + sizeof(AckHdr), h.nacks);
    consume_racks(p, cx.src, q, h.nracks);
    assert(sizeof(AckHdr) + ack_bytes(h.nacks) + ack_bytes(h.nracks) ==
           cx.size);
  }

  static void on_get_reply(AmContext& cx) {
    auto& p = proto();
    const auto h = read_hdr<RepHdr>(cx.data);
    const auto* payload = consume_acks(
        p, static_cast<const std::byte*>(cx.data) + sizeof(RepHdr), h.nacks);
    payload = consume_racks(p, cx.src, payload, h.nracks);
    // Map lookup under the lock; the node reference stays valid after
    // release (unordered_map nodes are stable under concurrent inserts
    // from injected sends, and only this thread — the consumer — erases).
    const RmaAmProtocol::Pending* pd = nullptr;
    {
      arch::SpinGuard g(p.pending_mu_);
      auto it = p.pending_.find(h.cookie);
      if (it != p.pending_.end()) pd = &it->second;
    }
    if (!pd) {
      // The request was cancelled (fail_all_peers) before this reply
      // arrived; the landing buffers may be gone, so drop the payload.
      ++p.stats_.stale_completions;
      return;
    }
    // Scatter while the payload is alive (eager payloads die with the
    // handler); completion itself is deferred to poll().
    std::size_t off = 0;
    for (const auto& f : pd->scatter) {
      if (f.bytes) std::memcpy(f.ptr, payload + off, f.bytes);
      off += f.bytes;
    }
    assert(sizeof(RepHdr) + ack_bytes(h.nacks) + ack_bytes(h.nracks) + off ==
           cx.size);
    p.completed_.push_back(h.cookie);
  }

  // Pool-staged reply: scatter straight out of the target's reply buffer
  // (cross-mapped shared heap — the same addressing contract as every
  // staged put), then owe a rack so the target can recycle it. The rack is
  // owed even when the request was cancelled: the buffer must go back
  // regardless of what happens to the payload.
  static void on_reply_staged(AmContext& cx, const RepStagedHdr& h) {
    assert(cx.engine->transport().shared_memory() &&
           "staged reply crossed a non-shared-memory transport");
    auto& p = proto();
    const auto* q = consume_acks(
        p, static_cast<const std::byte*>(cx.data) + sizeof(RepStagedHdr),
        h.nacks);
    consume_racks(p, cx.src, q, h.nracks);
    p.owe_rack(cx.src, h.cookie);
    const RmaAmProtocol::Pending* pd = nullptr;
    {
      arch::SpinGuard g(p.pending_mu_);
      auto it = p.pending_.find(h.cookie);
      if (it != p.pending_.end()) pd = &it->second;
    }
    if (!pd) {
      ++p.stats_.stale_completions;
      return;
    }
    const auto* payload = reinterpret_cast<const std::byte*>(
        static_cast<std::uintptr_t>(p.wire_dec(h.buf)));
    std::size_t off = 0;
    for (const auto& f : pd->scatter) {
      if (f.bytes) std::memcpy(f.ptr, payload + off, f.bytes);
      off += f.bytes;
    }
    assert(off == static_cast<std::size_t>(h.bytes));
    p.completed_.push_back(h.cookie);
    ++p.stats_.staged_replies_handled;
  }

  static void on_get_reply_staged(AmContext& cx) {
    on_reply_staged(cx, read_hdr<RepStagedHdr>(cx.data));
  }

  static void on_get_frag_reply_staged(AmContext& cx) {
    on_reply_staged(cx, read_hdr<RepStagedHdr>(cx.data));
  }
};

WireAddr RmaAmProtocol::wire_enc(std::uint64_t addr) const {
  return am_->arena().segmap().encode(
      reinterpret_cast<const void*>(static_cast<std::uintptr_t>(addr)));
}

std::uint64_t RmaAmProtocol::wire_dec(WireAddr wa) const {
  return static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(
      am_->arena().segmap().decode(wa)));
}

RmaAmProtocol::RmaAmProtocol(AmEngine* am, AmWindowSetting w,
                             double rtt_envelope)
    : am_(am),
      adaptive_(w.adaptive),
      window_(w.window ? w.window : 1),
      max_window_(w.adaptive ? adaptive_ceiling(am)
                             : (w.window ? w.window : 1)),
      envelope_(rtt_envelope) {
  // The constructing thread is the consumer until poll_requests re-stamps
  // (progress-thread migration moves the role with the poll loop).
  consumer_tm_.store(thread_marker(), std::memory_order_relaxed);
  // One peer per rank up front: peer() becomes an index, and helper issue
  // passes hold stable references without a container lock. Every peer
  // starts its controller at the configured window; pinned mode never
  // consults it (window_now short-circuits on adaptive_).
  const int n = am_->arena().config().ranks;
  peers_.reserve(static_cast<std::size_t>(n));
  for (int t = 0; t < n; ++t)
    peers_.push_back(
        std::make_unique<Peer>(t, window_, max_window_, envelope_));
}

std::uint64_t RmaAmProtocol::new_pending(int target, Done done,
                                         std::vector<LocalFrag> scatter) {
  arch::SpinGuard g(pending_mu_);
  const std::uint64_t cookie = next_cookie_++;
  pending_.emplace(cookie,
                   Pending{target, std::move(done), std::move(scatter)});
  return cookie;
}

bool RmaAmProtocol::claim_outstanding(Peer& p) {
  std::uint32_t cur = p.outstanding.load(std::memory_order_relaxed);
  const std::uint32_t w = window_now(p);
  while (cur < w) {
    if (p.outstanding.compare_exchange_weak(cur, cur + 1,
                                            std::memory_order_acq_rel)) {
      arch::relaxed_max(stats_.max_outstanding, cur + 1);
      return true;
    }
  }
  return false;
}

bool RmaAmProtocol::try_claim_credit(Peer& p) {
  // Queued requests go first — only flush_sendq (consumer) drains those,
  // claiming credits past this check.
  if (p.sendq_n.load(std::memory_order_acquire) != 0) return false;
  return claim_outstanding(p);
}

RmaAmProtocol::StageBuf RmaAmProtocol::acquire_stage(Peer& p,
                                                     std::size_t bytes) {
  {
    // Smallest pooled buffer that fits; the pool holds at most `window`
    // entries (one per possible in-flight request), so the scan is short.
    arch::SpinGuard g(p.mu);
    std::size_t best = p.stage_pool.size();
    for (std::size_t i = 0; i < p.stage_pool.size(); ++i) {
      if (p.stage_pool[i].cap < bytes) continue;
      if (best == p.stage_pool.size() ||
          p.stage_pool[i].cap < p.stage_pool[best].cap)
        best = i;
    }
    if (best != p.stage_pool.size()) {
      StageBuf b = p.stage_pool[best];
      p.stage_pool[best] = p.stage_pool.back();
      p.stage_pool.pop_back();
      return b;
    }
  }
  // Pool miss: carve a fresh block, rounded up so a stream of slightly
  // varying sizes converges on one reusable size class (the shared heap
  // is internally locked — any thread may allocate). On an exhausted
  // heap the consumer spins with poll, like the AmEngine's rendezvous
  // path — but bails out (null buffer; the caller cancels) once the error
  // flag is up: the blocks we are waiting for may be bounce buffers
  // pinned by a dead peer's never-coming acks. A *helper* must not poll,
  // so it takes one attempt and returns null — its caller requeues the
  // request for the consumer to retry.
  std::size_t cap = 4096;
  while (cap < bytes) cap <<= 1;
  arch::relaxed_inc(stats_.stage_allocs);
  auto& heap = am_->arena().heap();
  for (;;) {
    if (void* buf = heap.allocate(cap)) return StageBuf{buf, cap};
    if (!on_consumer()) return StageBuf{};
    if (am_->arena().control().error_flag.value.load(
            std::memory_order_acquire) != 0)
      return StageBuf{};
    if (am_->poll() + poll() == 0) std::this_thread::yield();
    arch::cpu_relax();
  }
}

void RmaAmProtocol::recycle_stage(Peer& p, StageBuf buf) {
  if (!buf.p) return;
  {
    arch::SpinGuard g(p.mu);
    if (p.stage_pool.size() < window_now(p)) {
      p.stage_pool.push_back(buf);
      return;
    }
  }
  am_->arena().heap().deallocate(buf.p);
}

std::uint32_t RmaAmProtocol::adaptive_ceiling(AmEngine* am) {
  // Ceiling × chunk = the in-flight staging working set; 1MB keeps it
  // cache-resident at the default 64K am-wire chunk (ceiling 16) while
  // small-chunk configs (tests, soaks) still get the full range.
  constexpr std::size_t kStagingBudgetBytes = 1 << 20;
  const auto& cfg = am->arena().config();
  std::size_t chunk = cfg.xfer_chunk_bytes < cfg.am_xfer_chunk_bytes
                          ? cfg.xfer_chunk_bytes
                          : cfg.am_xfer_chunk_bytes;
  if (chunk == 0) chunk = 1;
  auto cap = static_cast<std::uint32_t>(kStagingBudgetBytes / chunk);
  if (cap < kDefaultAmWindow) cap = kDefaultAmWindow;
  if (cap > kMaxAmWindow) cap = kMaxAmWindow;
  return cap;
}

RmaAmProtocol::StageBuf RmaAmProtocol::acquire_reply_stage(
    Peer& p, std::size_t bytes) {
  // Staged replies are bounded by the window *ceiling*, not the adaptive
  // operating point: a pure responder's controller never sees acks (it
  // sends no credit-consuming requests), so its operating point would sit
  // at the start window forever and clamp an initiator whose window has
  // grown — the initiator's own window already bounds how many replies
  // can be awaited, this bound only has to keep a failing peer from
  // pinning unbounded heap. Past it the caller falls back to the
  // rendezvous REPLY path — never block here, a reply send runs inside
  // the target's poll loop.
  if (p.reply_out.size() >= window()) return StageBuf{};
  std::size_t best = p.reply_pool.size();
  for (std::size_t i = 0; i < p.reply_pool.size(); ++i) {
    if (p.reply_pool[i].cap < bytes) continue;
    if (best == p.reply_pool.size() ||
        p.reply_pool[i].cap < p.reply_pool[best].cap)
      best = i;
  }
  if (best != p.reply_pool.size()) {
    StageBuf b = p.reply_pool[best];
    p.reply_pool[best] = p.reply_pool.back();
    p.reply_pool.pop_back();
    ++stats_.reply_pool_hits;
    return b;
  }
  // Pool miss: one allocation attempt, same size-class rounding as the put
  // pool. A momentarily exhausted heap is a fallback, not a stall.
  std::size_t cap = 4096;
  while (cap < bytes) cap <<= 1;
  if (void* buf = am_->arena().heap().allocate(cap)) {
    ++stats_.reply_stage_allocs;
    return StageBuf{buf, cap};
  }
  return StageBuf{};
}

void RmaAmProtocol::recycle_reply(Peer& p, std::uint64_t cookie) {
  auto it = p.reply_out.find(cookie);
  if (it == p.reply_out.end()) return;  // freed by fail_all_peers already
  StageBuf b = it->second;
  p.reply_out.erase(it);
  // Pool retention matches the stage bound (the window ceiling); a pinned
  // window may have shrunk the bound since this buffer went out, and the
  // excess drains back to the heap.
  if (p.reply_pool.size() < window()) {
    p.reply_pool.push_back(b);
    return;
  }
  am_->arena().heap().deallocate(b.p);
}

RmaAmProtocol::OwedAcks RmaAmProtocol::take_acks(int target) {
  // Snapshot-and-clear before any send: the send may spin on a full ring,
  // which polls our own inbox, whose handlers append fresh owed acks —
  // those wait for the next record.
  Peer& p = peer(target);
  arch::SpinGuard g(p.mu);
  OwedAcks oa{std::move(p.acks_owed), std::move(p.racks_owed)};
  p.acks_owed.clear();
  p.racks_owed.clear();
  return oa;
}

void RmaAmProtocol::enqueue(Peer& p, QueuedReq q) {
  arch::relaxed_inc(stats_.requests_queued);
  // Bounded queue: past the slack, the injecting *consumer* call makes
  // progress until a slot frees. Our own inbox keeps draining (acks retire
  // credits, which sends queued requests), so mutual floods advance in
  // lockstep instead of deadlocking. A set error flag means the acks may
  // never come — park the request regardless; teardown's fail_all_peers()
  // reclaims it. The cap uses the window *ceiling*, not the moving
  // operating point — a shrink must not strand already-parked requests
  // behind a tighter bound. A helper cannot poll, so it parks
  // unconditionally: only the consumer's flush_sendq grows the queue past
  // the cap from the helper side, and it drains as fast as it grows.
  const std::size_t cap = window() + kQueueSlack;
  while (on_consumer() &&
         p.sendq_n.load(std::memory_order_acquire) >= cap &&
         am_->arena().control().error_flag.value.load(
             std::memory_order_acquire) == 0) {
    arch::relaxed_inc(stats_.send_stalls);
    if (am_->poll() + poll() == 0) std::this_thread::yield();
    arch::cpu_relax();
  }
  arch::SpinGuard g(p.mu);
  p.sendq.push_back(std::move(q));
  p.sendq_n.store(p.sendq.size(), std::memory_order_release);
  arch::relaxed_max(stats_.queued_peak, p.sendq.size());
}

// A staged send found the heap exhausted while the job is failing: the
// request can never be serviced. Cancel it the way fail_all_peers would —
// drop the pending entry (its done callback is destroyed, not fired) and
// return the credit the caller just consumed.
void RmaAmProtocol::cancel_sent(Peer& p, std::uint64_t cookie) {
  {
    arch::SpinGuard g(pending_mu_);
    pending_.erase(cookie);
  }
  arch::relaxed_inc(stats_.cancelled);
  const auto prev = p.outstanding.fetch_sub(1, std::memory_order_acq_rel);
  assert(prev > 0);
  (void)prev;
}

// Helper-side staged-put fallback: release the claimed credit and park the
// request (owned payload copy) for the consumer's flush_sendq to retry —
// a helper must not poll-spin on the exhausted heap, and cancel_sent would
// silently drop the data.
void RmaAmProtocol::requeue_put(Peer& p, std::uint64_t cookie,
                                const Frag& dst, const void* src) {
  p.outstanding.fetch_sub(1, std::memory_order_acq_rel);
  QueuedReq q{QueuedReq::kPut, cookie, {dst}, {}};
  const auto bytes = static_cast<std::size_t>(dst.bytes);
  if (bytes)
    q.payload.assign(static_cast<const std::byte*>(src),
                     static_cast<const std::byte*>(src) + bytes);
  enqueue(p, std::move(q));
}

// Stamps the wire-send time on a just-sent request so the completion loop
// can feed the request→ack round trip to the peer's window controller.
void RmaAmProtocol::note_wire_send(std::uint64_t cookie) {
  if (!adaptive_) return;
  const std::uint64_t now = arch::now_ns();
  arch::SpinGuard g(pending_mu_);
  auto it = pending_.find(cookie);
  if (it != pending_.end()) it->second.send_ns = now;
}

void RmaAmProtocol::send_put(int target, std::uint64_t cookie,
                             const Frag& dst, const void* src) {
  const std::size_t bytes = static_cast<std::size_t>(dst.bytes);
  // The eager-fit decision ignores the (yet untaken) piggyback list: if
  // the acks push an inline record past eager_max, AmEngine::prepare
  // falls back to its rendezvous staging transparently.
  if (sizeof(PutHdr) + bytes <= inline_cutoff(am_)) {
    // Small put: payload inline in the ring record. Helpers prepare with
    // may_poll=false — on a full ring they yield-spin while the *target*
    // drains it; only the consumer may poll its own inbox here.
    auto oa = take_acks(target);
    auto sb = am_->prepare(target, am_handler<&RmaAmHandlers::on_put>(),
                           sizeof(PutHdr) + oa_bytes(oa) + bytes,
                           /*may_poll=*/on_consumer());
    auto* q = static_cast<std::byte*>(sb.data);
    const PutHdr h{cookie, wire_enc(dst.addr),
                   static_cast<std::uint32_t>(oa.acks.size()),
                   static_cast<std::uint32_t>(oa.racks.size())};
    std::memcpy(q, &h, sizeof h);
    q = write_oa(q + sizeof h, oa);
    if (bytes) std::memcpy(q, src, bytes);
    am_->commit(sb);
    arch::relaxed_inc(stats_.puts_sent);
    arch::relaxed_add(stats_.acks_piggybacked, oa.acks.size());
    arch::relaxed_add(stats_.reply_acks_piggybacked, oa.racks.size());
    note_wire_send(cookie);
    return;
  }
  // Large put: payload through a pooled bounce buffer, descriptor inline.
  Peer& p = peer(target);
  StageBuf stage = acquire_stage(p, bytes);
  if (!stage.p) {
    // Exhausted heap: a helper parks the request for the consumer to
    // retry; the consumer only gets here when the job is failing, and
    // cancels.
    if (!on_consumer() &&
        am_->arena().control().error_flag.value.load(
            std::memory_order_acquire) == 0)
      requeue_put(p, cookie, dst, src);
    else
      cancel_sent(p, cookie);
    return;
  }
  auto oa = take_acks(target);
  std::memcpy(stage.p, src, bytes);
  {
    arch::SpinGuard g(pending_mu_);
    auto it = pending_.find(cookie);
    if (it != pending_.end()) it->second.stage = stage;
  }
  auto sb = am_->prepare(target,
                         am_handler<&RmaAmHandlers::on_put_staged>(),
                         sizeof(PutStagedHdr) + oa_bytes(oa),
                         /*may_poll=*/on_consumer());
  auto* q = static_cast<std::byte*>(sb.data);
  const PutStagedHdr h{cookie, wire_enc(dst.addr),
                       am_->arena().segmap().encode(stage.p),
                       dst.bytes,
                       static_cast<std::uint32_t>(oa.acks.size()),
                       static_cast<std::uint32_t>(oa.racks.size())};
  std::memcpy(q, &h, sizeof h);
  write_oa(q + sizeof h, oa);
  am_->commit(sb);
  arch::relaxed_inc(stats_.puts_sent);
  arch::relaxed_inc(stats_.puts_staged);
  arch::relaxed_add(stats_.acks_piggybacked, oa.acks.size());
  arch::relaxed_add(stats_.reply_acks_piggybacked, oa.racks.size());
  note_wire_send(cookie);
}

void RmaAmProtocol::send_get(int target, std::uint64_t cookie,
                             const Frag& src) {
  auto oa = take_acks(target);
  auto sb = am_->prepare(target, am_handler<&RmaAmHandlers::on_get>(),
                         sizeof(GetHdr) + oa_bytes(oa),
                         /*may_poll=*/on_consumer());
  auto* q = static_cast<std::byte*>(sb.data);
  const GetHdr h{cookie, wire_enc(src.addr), src.bytes,
                 static_cast<std::uint32_t>(oa.acks.size()),
                 static_cast<std::uint32_t>(oa.racks.size())};
  std::memcpy(q, &h, sizeof h);
  write_oa(q + sizeof h, oa);
  am_->commit(sb);
  arch::relaxed_inc(stats_.gets_sent);
  arch::relaxed_add(stats_.acks_piggybacked, oa.acks.size());
  arch::relaxed_add(stats_.reply_acks_piggybacked, oa.racks.size());
  note_wire_send(cookie);
}

void RmaAmProtocol::send_put_frag(int target, std::uint64_t cookie,
                                  const std::vector<Frag>& dsts,
                                  const LocalFrag* srcs, std::size_t nsrcs,
                                  std::size_t total) {
  const std::size_t desc_bytes = dsts.size() * sizeof(FragDesc);
  if (sizeof(FragHdr) + desc_bytes + total <= inline_cutoff(am_)) {
    auto oa = take_acks(target);
    auto sb = am_->prepare(
        target, am_handler<&RmaAmHandlers::on_put_frag>(),
        sizeof(FragHdr) + oa_bytes(oa) + desc_bytes + total);
    auto* q = static_cast<std::byte*>(sb.data);
    const FragHdr h{cookie, static_cast<std::uint32_t>(dsts.size()),
                    static_cast<std::uint32_t>(oa.acks.size()),
                    static_cast<std::uint32_t>(oa.racks.size()), 0};
    std::memcpy(q, &h, sizeof h);
    q = write_oa(q + sizeof h, oa);
    for (const auto& d : dsts) {
      const FragDesc fd{wire_enc(d.addr), d.bytes};
      std::memcpy(q, &fd, sizeof fd);
      q += sizeof fd;
    }
    // Gather the local fragments straight into the wire buffer.
    for (std::size_t i = 0; i < nsrcs; ++i) {
      if (srcs[i].bytes) std::memcpy(q, srcs[i].ptr, srcs[i].bytes);
      q += srcs[i].bytes;
    }
    am_->commit(sb);
    arch::relaxed_inc(stats_.frag_puts_sent);
    arch::relaxed_add(stats_.acks_piggybacked, oa.acks.size());
    arch::relaxed_add(stats_.reply_acks_piggybacked, oa.racks.size());
    note_wire_send(cookie);
    return;
  }
  // Large scatter-put: descriptors and gathered payload go through a
  // pooled bounce buffer; the ring record is just the staged descriptor.
  Peer& p = peer(target);
  StageBuf stage = acquire_stage(p, desc_bytes + total);
  if (!stage.p) {
    cancel_sent(p, cookie);
    return;
  }
  auto oa = take_acks(target);
  auto* q = static_cast<std::byte*>(stage.p);
  // The descriptors inside the staged buffer are wire data too (the target
  // reads them out of the bounce buffer), so they carry wire addresses.
  for (const auto& d : dsts) {
    const FragDesc fd{wire_enc(d.addr), d.bytes};
    std::memcpy(q, &fd, sizeof fd);
    q += sizeof fd;
  }
  for (std::size_t i = 0; i < nsrcs; ++i) {
    if (srcs[i].bytes) std::memcpy(q, srcs[i].ptr, srcs[i].bytes);
    q += srcs[i].bytes;
  }
  {
    arch::SpinGuard g(pending_mu_);
    auto it = pending_.find(cookie);
    if (it != pending_.end()) it->second.stage = stage;
  }
  auto sb = am_->prepare(target,
                         am_handler<&RmaAmHandlers::on_put_frag_staged>(),
                         sizeof(FragStagedHdr) + oa_bytes(oa),
                         /*may_poll=*/on_consumer());
  auto* w = static_cast<std::byte*>(sb.data);
  const FragStagedHdr h{cookie, am_->arena().segmap().encode(stage.p),
                        total, static_cast<std::uint32_t>(dsts.size()),
                        static_cast<std::uint32_t>(oa.acks.size()),
                        static_cast<std::uint32_t>(oa.racks.size()), 0};
  std::memcpy(w, &h, sizeof h);
  write_oa(w + sizeof h, oa);
  am_->commit(sb);
  arch::relaxed_inc(stats_.frag_puts_sent);
  arch::relaxed_inc(stats_.puts_staged);
  arch::relaxed_add(stats_.acks_piggybacked, oa.acks.size());
  arch::relaxed_add(stats_.reply_acks_piggybacked, oa.racks.size());
  note_wire_send(cookie);
}

void RmaAmProtocol::send_get_frag(int target, std::uint64_t cookie,
                                  const std::vector<Frag>& srcs) {
  auto oa = take_acks(target);
  auto sb = am_->prepare(
      target, am_handler<&RmaAmHandlers::on_get_frag>(),
      sizeof(FragHdr) + oa_bytes(oa) + srcs.size() * sizeof(FragDesc));
  auto* q = static_cast<std::byte*>(sb.data);
  const FragHdr h{cookie, static_cast<std::uint32_t>(srcs.size()),
                  static_cast<std::uint32_t>(oa.acks.size()),
                  static_cast<std::uint32_t>(oa.racks.size()), 0};
  std::memcpy(q, &h, sizeof h);
  q = write_oa(q + sizeof h, oa);
  for (const auto& s : srcs) {
    const FragDesc fd{wire_enc(s.addr), s.bytes};
    std::memcpy(q, &fd, sizeof fd);
    q += sizeof fd;
  }
  am_->commit(sb);
  arch::relaxed_inc(stats_.frag_gets_sent);
  arch::relaxed_add(stats_.acks_piggybacked, oa.acks.size());
  arch::relaxed_add(stats_.reply_acks_piggybacked, oa.racks.size());
  note_wire_send(cookie);
}

void RmaAmProtocol::put(int target, void* dst, const void* src,
                        std::size_t bytes, Done done) {
  const std::uint64_t cookie = new_pending(target, std::move(done), {});
  Peer& p = peer(target);
  const Frag d{reinterpret_cast<std::uintptr_t>(dst), bytes};
  if (try_claim_credit(p)) {
    send_put(target, cookie, d, src);
    return;
  }
  // Window full: park the request with an owned payload copy — the caller
  // may reuse src the moment we return, exactly as on the immediate path.
  // (0-byte puts may legally pass a null src; don't form iterators from it.)
  QueuedReq q{QueuedReq::kPut, cookie, {d}, {}};
  if (bytes)
    q.payload.assign(static_cast<const std::byte*>(src),
                     static_cast<const std::byte*>(src) + bytes);
  enqueue(p, std::move(q));
}

void RmaAmProtocol::get(int target, void* dst, const void* src,
                        std::size_t bytes, Done done) {
  const std::uint64_t cookie =
      new_pending(target, std::move(done), {LocalFrag{dst, bytes}});
  Peer& p = peer(target);
  const Frag s{reinterpret_cast<std::uintptr_t>(src), bytes};
  if (try_claim_credit(p)) {
    send_get(target, cookie, s);
    return;
  }
  enqueue(p, QueuedReq{QueuedReq::kGet, cookie, {s}, {}});
}

void RmaAmProtocol::put_fragments(int target, const std::vector<Frag>& dsts,
                                  const std::vector<LocalFrag>& srcs,
                                  Done done) {
  std::size_t total = 0;
  for (const auto& s : srcs) total += s.bytes;
  const std::uint64_t cookie = new_pending(target, std::move(done), {});
  Peer& p = peer(target);
  if (try_claim_credit(p)) {
    send_put_frag(target, cookie, dsts, srcs.data(), srcs.size(), total);
    return;
  }
  QueuedReq q{QueuedReq::kPutFrag, cookie, dsts, {}};
  q.payload.reserve(total);
  for (const auto& s : srcs) {
    const auto* b = static_cast<const std::byte*>(s.ptr);
    q.payload.insert(q.payload.end(), b, b + s.bytes);
  }
  enqueue(p, std::move(q));
}

void RmaAmProtocol::get_fragments(int target, const std::vector<Frag>& srcs,
                                  std::vector<LocalFrag> dsts, Done done) {
  const std::uint64_t cookie =
      new_pending(target, std::move(done), std::move(dsts));
  Peer& p = peer(target);
  if (try_claim_credit(p)) {
    send_get_frag(target, cookie, srcs);
    return;
  }
  enqueue(p, QueuedReq{QueuedReq::kGetFrag, cookie, srcs, {}});
}

int RmaAmProtocol::flush_sendq(Peer& p) {
  // Consumer-only drain. Pop + credit claim under the peer lock (ignoring
  // the sendq_n gate — we ARE the queue), the send itself outside it: a
  // send may spin on a full ring, and a helper blocked on p.mu for that
  // long would stall its whole issue pass.
  int work = 0;
  for (;;) {
    QueuedReq q;
    {
      arch::SpinGuard g(p.mu);
      if (p.sendq.empty() || !claim_outstanding(p)) break;
      q = std::move(p.sendq.front());
      p.sendq.pop_front();
      p.sendq_n.store(p.sendq.size(), std::memory_order_release);
    }
    switch (q.kind) {
      case QueuedReq::kPut:
        send_put(p.target, q.cookie, q.remote[0], q.payload.data());
        break;
      case QueuedReq::kGet:
        send_get(p.target, q.cookie, q.remote[0]);
        break;
      case QueuedReq::kPutFrag: {
        const LocalFrag whole{q.payload.data(), q.payload.size()};
        send_put_frag(p.target, q.cookie, q.remote, &whole, 1,
                      q.payload.size());
        break;
      }
      case QueuedReq::kGetFrag:
        send_get_frag(p.target, q.cookie, q.remote);
        break;
    }
    ++work;
  }
  return work;
}

int RmaAmProtocol::poll_requests() {
  // The poll loop defines the consumer: re-stamp every pass so the role
  // follows a progress-thread migration (constructor thread vs worker 0).
  consumer_tm_.store(thread_marker(), std::memory_order_relaxed);
  int work = 0;
  // Swap-to-local idiom throughout: every send below may spin on a full
  // ring, which polls our own inbox, whose handlers append to these very
  // queues. Entries arriving mid-drain are picked up next poll.
  //
  // Completions run first so their retired credits release queued requests
  // within the same poll.
  if (!completed_.empty()) {
    auto comp = std::move(completed_);
    completed_.clear();
    // One clock read for the whole batch: every cookie in comp was sent
    // before this poll began, so now >= send_ns for each.
    const std::uint64_t now = adaptive_ ? arch::now_ns() : 0;
    for (const std::uint64_t cookie : comp) {
      decltype(pending_)::node_type node;
      {
        arch::SpinGuard g(pending_mu_);
        node = pending_.extract(cookie);
      }
      if (node.empty()) {
        // Cancelled by fail_all_peers before the ack arrived.
        ++stats_.stale_completions;
        continue;
      }
      Peer& p = peer(node.mapped().target);
      const auto prev =
          p.outstanding.fetch_sub(1, std::memory_order_acq_rel);
      assert(prev > 0 && "ack for a request never sent");
      (void)prev;
      // The target is done with the bounce buffer once its ack arrived.
      recycle_stage(p, node.mapped().stage);
      // Feed the request→ack round trip to this peer's controller; its
      // window moves and every derived bound follows on the next check.
      if (adaptive_ && node.mapped().send_ns) {
        const int d = p.ctrl.on_ack(now - node.mapped().send_ns);
        if (d > 0) ++stats_.window_grow;
        if (d < 0) ++stats_.window_shrink;
      }
      // Extracted from the map (and outside every lock) before firing:
      // the callback may issue new protocol ops.
      Done done = std::move(node.mapped().done);
      if (done) done();
      ++work;
    }
  }
  // Freed credits release window-blocked requests.
  for (std::size_t i = 0; i < peers_.size(); ++i)
    work += flush_sendq(*peers_[i]);
  if (!replies_.empty()) {
    auto reps = std::move(replies_);
    replies_.clear();
    for (const auto& r : reps) {
      std::size_t total = 0;
      for (const auto& f : r.gather) total += f.bytes;
      // A reply too large to ride inline goes through the pooled reply
      // stage: gather into a recycled shared-heap buffer, ship only the
      // descriptor, get the buffer back on the initiator's rack. Bound
      // reached or heap empty → the old rendezvous REPLY below (staging
      // is an optimization, never a requirement).
      if (sizeof(RepHdr) + total > inline_cutoff(am_)) {
        Peer& p = peer(r.target);
        StageBuf stage = acquire_reply_stage(p, total);
        if (stage.p) {
          auto* g = static_cast<std::byte*>(stage.p);
          for (const auto& f : r.gather) {
            if (f.bytes)
              std::memcpy(g,
                          reinterpret_cast<const void*>(
                              static_cast<std::uintptr_t>(f.addr)),
                          static_cast<std::size_t>(f.bytes));
            g += f.bytes;
          }
          p.reply_out.emplace(r.cookie, stage);
          auto oa = take_acks(r.target);
          auto sb = am_->prepare(
              r.target,
              r.frag
                  ? am_handler<&RmaAmHandlers::on_get_frag_reply_staged>()
                  : am_handler<&RmaAmHandlers::on_get_reply_staged>(),
              sizeof(RepStagedHdr) + oa_bytes(oa));
          auto* q = static_cast<std::byte*>(sb.data);
          const RepStagedHdr h{
              r.cookie, am_->arena().segmap().encode(stage.p),
              static_cast<std::uint64_t>(total),
              static_cast<std::uint32_t>(oa.acks.size()),
              static_cast<std::uint32_t>(oa.racks.size())};
          std::memcpy(q, &h, sizeof h);
          write_oa(q + sizeof h, oa);
          am_->commit(sb);
          ++stats_.replies_sent;
          ++stats_.replies_staged;
          arch::relaxed_add(stats_.acks_piggybacked, oa.acks.size());
          arch::relaxed_add(stats_.reply_acks_piggybacked, oa.racks.size());
          ++work;
          continue;
        }
        ++stats_.reply_fallbacks;
      }
      auto oa = take_acks(r.target);
      auto sb = am_->prepare(
          r.target, am_handler<&RmaAmHandlers::on_get_reply>(),
          sizeof(RepHdr) + oa_bytes(oa) + total);
      auto* q = static_cast<std::byte*>(sb.data);
      const RepHdr h{r.cookie, static_cast<std::uint32_t>(oa.acks.size()),
                     static_cast<std::uint32_t>(oa.racks.size())};
      std::memcpy(q, &h, sizeof h);
      q = write_oa(q + sizeof h, oa);
      // Gather this rank's source runs at reply time — the get reads the
      // data as it exists when the target serves it, exactly like a
      // direct-wire rget reads memory at copy time. (Addresses here are
      // local: on_get/on_get_frag resolved them at decode.)
      for (const auto& f : r.gather) {
        if (f.bytes)
          std::memcpy(q,
                      reinterpret_cast<const void*>(
                          static_cast<std::uintptr_t>(f.addr)),
                      static_cast<std::size_t>(f.bytes));
        q += f.bytes;
      }
      am_->commit(sb);
      ++stats_.replies_sent;
      arch::relaxed_add(stats_.acks_piggybacked, oa.acks.size());
      arch::relaxed_add(stats_.reply_acks_piggybacked, oa.racks.size());
      ++work;
    }
  }
  return work;
}

int RmaAmProtocol::flush_acks() {
  int work = 0;
  // Acks and racks no request or reply carried: one combined multi-ack
  // record per indebted target per flush.
  for (std::size_t i = 0; i < peers_.size(); ++i) {
    Peer& pr = *peers_[i];
    {
      arch::SpinGuard g(pr.mu);
      if (pr.acks_owed.empty() && pr.racks_owed.empty()) continue;
    }
    const int target = pr.target;
    auto oa = take_acks(target);
    auto sb = am_->prepare(target, am_handler<&RmaAmHandlers::on_ack>(),
                           sizeof(AckHdr) + oa_bytes(oa));
    auto* q = static_cast<std::byte*>(sb.data);
    const AckHdr h{static_cast<std::uint32_t>(oa.acks.size()),
                   static_cast<std::uint32_t>(oa.racks.size())};
    std::memcpy(q, &h, sizeof h);
    write_oa(q + sizeof h, oa);
    am_->commit(sb);
    ++stats_.acks_sent;
    stats_.ack_cookies_sent += oa.acks.size();
    stats_.reply_ack_cookies_sent += oa.racks.size();
    ++work;
  }
  return work;
}

bool RmaAmProtocol::idle() const {
  {
    arch::SpinGuard g(pending_mu_);
    if (!pending_.empty()) return false;
  }
  if (!replies_.empty() || !completed_.empty()) return false;
  for (const auto& pp : peers_) {
    const Peer& p = *pp;
    if (p.sendq_n.load(std::memory_order_acquire) != 0) return false;
    arch::SpinGuard g(p.mu);
    if (!p.acks_owed.empty() || !p.racks_owed.empty() ||
        !p.reply_out.empty())
      return false;
  }
  return true;
}

void RmaAmProtocol::fail_all_peers() {
  // Teardown path (consumer, with helpers quiesced by the caller). Every
  // request (in flight or queued) has a pending_ entry; dropping the map
  // cancels them all — done callbacks are destroyed, never fired, and the
  // arena error flag is the failure signal user code observes. Bounce
  // buffers go back to the shared heap (a dead target may still copy from
  // one, but it reads stale bytes at worst — it can no longer complete
  // anything).
  auto& heap = am_->arena().heap();
  {
    arch::SpinGuard g(pending_mu_);
    stats_.cancelled += pending_.size();
    for (auto& [cookie, pd] : pending_)
      if (pd.stage.p) heap.deallocate(pd.stage.p);
    pending_.clear();
  }
  completed_.clear();
  replies_.clear();
  for (auto& pp : peers_) {
    Peer& p = *pp;
    arch::SpinGuard g(p.mu);
    p.sendq.clear();
    p.sendq_n.store(0, std::memory_order_release);
    p.acks_owed.clear();
    p.racks_owed.clear();
    p.outstanding.store(0, std::memory_order_release);
    for (auto& b : p.stage_pool) heap.deallocate(b.p);
    p.stage_pool.clear();
    // The reply side mirrors the put side: pooled buffers go back to the
    // heap, and staged replies whose racks will never arrive are unpinned
    // and freed — a dead initiator may still scatter from one, but it
    // reads stale bytes at worst and can no longer complete anything.
    for (auto& b : p.reply_pool) heap.deallocate(b.p);
    p.reply_pool.clear();
    for (auto& [cookie, b] : p.reply_out) heap.deallocate(b.p);
    p.reply_out.clear();
  }
}

XferEngine::WireOps RmaAmProtocol::wire_ops() {
  XferEngine::WireOps ops;
  ops.put_chunk = [this](int target, void* dst, const void* src,
                         std::size_t bytes, XferEngine::Callback done) {
    put(target, dst, src, bytes, std::move(done));
  };
  ops.get_chunk = [this](int target, void* dst, const void* src,
                         std::size_t bytes, XferEngine::Callback done) {
    get(target, dst, src, bytes, std::move(done));
  };
  // Back-pressure: the engine holds chunks (zero-cost — the source buffer
  // is pinned until on_source anyway) while the window to this target is
  // full, instead of piling payload copies into the sender-side queue.
  ops.ready = [this](int target) { return can_accept(target); };
  // Budget metering: how many chunks this target can take right now —
  // the *adaptive* window (window_now follows the controller as it
  // moves) minus in-flight requests, zero while anything is parked in
  // the sender-side queue. The engine's poll deals its chunk budget
  // against this, so a shrunken window diverts budget to other targets
  // within the same poll instead of consuming it on a closed channel.
  ops.credits = [this](int target) -> std::uint32_t {
    if (target < 0 || static_cast<std::size_t>(target) >= peers_.size())
      return window_now(target);
    const Peer& p = *peers_[static_cast<std::size_t>(target)];
    if (p.sendq_n.load(std::memory_order_acquire) != 0) return 0;
    const std::uint32_t w = window_now(p);
    const std::uint32_t out = p.outstanding.load(std::memory_order_relaxed);
    return out < w ? w - out : 0;
  };
  return ops;
}

}  // namespace gex
