#include "gex/rma_am.hpp"

#include <cassert>
#include <cstring>

#include "gex/handlers.hpp"
#include "gex/runtime.hpp"

namespace gex {

namespace {

// Wire record headers. Always memcpy'd to/from the ring (record payloads
// are only 4-byte aligned). Cookies are initiator-local ids; `dst`/`addr`
// fields are addresses in the owning rank's cross-mapped segment — data
// addresses, never code pointers (the same contract as RdzvDesc).
struct PutHdr {
  std::uint64_t cookie;
  std::uint64_t dst;
};
struct GetHdr {
  std::uint64_t cookie;
  std::uint64_t src;
  std::uint64_t bytes;
};
struct FragHdr {
  std::uint64_t cookie;
  std::uint32_t nfrags;
  std::uint32_t reserved;
};
struct FragDesc {
  std::uint64_t addr;
  std::uint64_t bytes;
};
struct AckHdr {
  std::uint64_t cookie;
};
struct RepHdr {
  std::uint64_t cookie;
};

template <typename H>
H read_hdr(const void* p) {
  H h;
  std::memcpy(&h, p, sizeof h);
  return h;
}

RmaAmProtocol& proto() {
  auto* r = self();
  assert(r && r->rma_am && "AM RMA record outside an SPMD region");
  return *r->rma_am;
}

}  // namespace

// Handlers run inside the target's AmEngine::poll: they may copy bytes and
// record work, but must not inject (see header comment). Registered in the
// gex handler registry at static initialization via am_handler<>, so every
// rank — thread or fork — agrees on the indices.
struct RmaAmHandlers {
  static void on_put(AmContext& cx) {
    auto& p = proto();
    const auto h = read_hdr<PutHdr>(cx.data);
    const auto* payload =
        static_cast<const std::byte*>(cx.data) + sizeof(PutHdr);
    std::memcpy(reinterpret_cast<void*>(
                    static_cast<std::uintptr_t>(h.dst)),
                payload, cx.size - sizeof(PutHdr));
    p.acks_.push_back({cx.src, h.cookie});
    ++p.stats_.puts_handled;
  }

  static void on_put_frag(AmContext& cx) {
    auto& p = proto();
    const auto h = read_hdr<FragHdr>(cx.data);
    const auto* base = static_cast<const std::byte*>(cx.data);
    const auto* descs = base + sizeof(FragHdr);
    const auto* payload = descs + h.nfrags * sizeof(FragDesc);
    std::size_t off = 0;
    for (std::uint32_t i = 0; i < h.nfrags; ++i) {
      const auto d = read_hdr<FragDesc>(descs + i * sizeof(FragDesc));
      std::memcpy(reinterpret_cast<void*>(
                      static_cast<std::uintptr_t>(d.addr)),
                  payload + off, static_cast<std::size_t>(d.bytes));
      off += static_cast<std::size_t>(d.bytes);
    }
    assert(sizeof(FragHdr) + h.nfrags * sizeof(FragDesc) + off == cx.size);
    p.acks_.push_back({cx.src, h.cookie});
    ++p.stats_.puts_handled;
  }

  static void on_get(AmContext& cx) {
    auto& p = proto();
    const auto h = read_hdr<GetHdr>(cx.data);
    p.replies_.push_back(
        {cx.src, h.cookie, {RmaAmProtocol::Frag{h.src, h.bytes}}});
    ++p.stats_.gets_handled;
  }

  static void on_get_frag(AmContext& cx) {
    auto& p = proto();
    const auto h = read_hdr<FragHdr>(cx.data);
    const auto* descs =
        static_cast<const std::byte*>(cx.data) + sizeof(FragHdr);
    std::vector<RmaAmProtocol::Frag> gather;
    gather.reserve(h.nfrags);
    for (std::uint32_t i = 0; i < h.nfrags; ++i) {
      const auto d = read_hdr<FragDesc>(descs + i * sizeof(FragDesc));
      gather.push_back({d.addr, d.bytes});
    }
    p.replies_.push_back({cx.src, h.cookie, std::move(gather)});
    ++p.stats_.gets_handled;
  }

  static void on_ack(AmContext& cx) {
    proto().completed_.push_back(read_hdr<AckHdr>(cx.data).cookie);
  }

  static void on_get_reply(AmContext& cx) {
    auto& p = proto();
    const auto h = read_hdr<RepHdr>(cx.data);
    auto it = p.pending_.find(h.cookie);
    assert(it != p.pending_.end() && "get reply for unknown cookie");
    // Scatter while the payload is alive (eager payloads die with the
    // handler); completion itself is deferred to poll().
    const auto* payload =
        static_cast<const std::byte*>(cx.data) + sizeof(RepHdr);
    std::size_t off = 0;
    for (const auto& f : it->second.scatter) {
      std::memcpy(f.ptr, payload + off, f.bytes);
      off += f.bytes;
    }
    assert(sizeof(RepHdr) + off == cx.size);
    p.completed_.push_back(h.cookie);
  }
};

std::uint64_t RmaAmProtocol::new_pending(Done done,
                                         std::vector<LocalFrag> scatter) {
  const std::uint64_t cookie = next_cookie_++;
  pending_.emplace(cookie, Pending{std::move(done), std::move(scatter)});
  return cookie;
}

void RmaAmProtocol::put(int target, void* dst, const void* src,
                        std::size_t bytes, Done done) {
  const std::uint64_t cookie = new_pending(std::move(done), {});
  auto sb = am_->prepare(target, am_handler<&RmaAmHandlers::on_put>(),
                         sizeof(PutHdr) + bytes);
  const PutHdr h{cookie, reinterpret_cast<std::uintptr_t>(dst)};
  std::memcpy(sb.data, &h, sizeof h);
  std::memcpy(static_cast<std::byte*>(sb.data) + sizeof h, src, bytes);
  am_->commit(sb);
  ++stats_.puts_sent;
}

void RmaAmProtocol::get(int target, void* dst, const void* src,
                        std::size_t bytes, Done done) {
  const std::uint64_t cookie =
      new_pending(std::move(done), {LocalFrag{dst, bytes}});
  const GetHdr h{cookie, reinterpret_cast<std::uintptr_t>(src), bytes};
  am_->send(target, am_handler<&RmaAmHandlers::on_get>(), &h, sizeof h);
  ++stats_.gets_sent;
}

void RmaAmProtocol::put_fragments(int target, const std::vector<Frag>& dsts,
                                  const std::vector<LocalFrag>& srcs,
                                  Done done) {
  std::size_t total = 0;
  for (const auto& s : srcs) total += s.bytes;
  const std::uint64_t cookie = new_pending(std::move(done), {});
  auto sb = am_->prepare(
      target, am_handler<&RmaAmHandlers::on_put_frag>(),
      sizeof(FragHdr) + dsts.size() * sizeof(FragDesc) + total);
  auto* q = static_cast<std::byte*>(sb.data);
  const FragHdr h{cookie, static_cast<std::uint32_t>(dsts.size()), 0};
  std::memcpy(q, &h, sizeof h);
  q += sizeof h;
  for (const auto& d : dsts) {
    const FragDesc fd{d.addr, d.bytes};
    std::memcpy(q, &fd, sizeof fd);
    q += sizeof fd;
  }
  // Gather the local fragments straight into the wire buffer.
  for (const auto& s : srcs) {
    std::memcpy(q, s.ptr, s.bytes);
    q += s.bytes;
  }
  am_->commit(sb);
  ++stats_.frag_puts_sent;
}

void RmaAmProtocol::get_fragments(int target, const std::vector<Frag>& srcs,
                                  std::vector<LocalFrag> dsts, Done done) {
  const std::uint64_t cookie = new_pending(std::move(done), std::move(dsts));
  auto sb =
      am_->prepare(target, am_handler<&RmaAmHandlers::on_get_frag>(),
                   sizeof(FragHdr) + srcs.size() * sizeof(FragDesc));
  auto* q = static_cast<std::byte*>(sb.data);
  const FragHdr h{cookie, static_cast<std::uint32_t>(srcs.size()), 0};
  std::memcpy(q, &h, sizeof h);
  q += sizeof h;
  for (const auto& s : srcs) {
    const FragDesc fd{s.addr, s.bytes};
    std::memcpy(q, &fd, sizeof fd);
    q += sizeof fd;
  }
  am_->commit(sb);
  ++stats_.frag_gets_sent;
}

int RmaAmProtocol::poll() {
  int work = 0;
  // Swap-to-local idiom throughout: every send below may spin on a full
  // ring, which polls our own inbox, whose handlers append to these very
  // queues. Entries arriving mid-drain are picked up next poll.
  if (!acks_.empty()) {
    auto acks = std::move(acks_);
    acks_.clear();
    for (const auto& a : acks) {
      const AckHdr h{a.cookie};
      am_->send(a.target, am_handler<&RmaAmHandlers::on_ack>(), &h,
                sizeof h);
      ++stats_.acks_sent;
      ++work;
    }
  }
  if (!replies_.empty()) {
    auto reps = std::move(replies_);
    replies_.clear();
    for (const auto& r : reps) {
      std::size_t total = 0;
      for (const auto& f : r.gather) total += f.bytes;
      auto sb = am_->prepare(r.target,
                             am_handler<&RmaAmHandlers::on_get_reply>(),
                             sizeof(RepHdr) + total);
      auto* q = static_cast<std::byte*>(sb.data);
      const RepHdr h{r.cookie};
      std::memcpy(q, &h, sizeof h);
      q += sizeof h;
      // Gather this rank's source runs at reply time — the get reads the
      // data as it exists when the target serves it, exactly like a
      // direct-wire rget reads memory at copy time.
      for (const auto& f : r.gather) {
        std::memcpy(q,
                    reinterpret_cast<const void*>(
                        static_cast<std::uintptr_t>(f.addr)),
                    static_cast<std::size_t>(f.bytes));
        q += f.bytes;
      }
      am_->commit(sb);
      ++stats_.replies_sent;
      ++work;
    }
  }
  if (!completed_.empty()) {
    auto comp = std::move(completed_);
    completed_.clear();
    for (const std::uint64_t cookie : comp) {
      auto node = pending_.extract(cookie);
      assert(!node.empty() && "completion for unknown cookie");
      // Extract before firing: the callback may issue new protocol ops.
      Done done = std::move(node.mapped().done);
      if (done) done();
      ++work;
    }
  }
  return work;
}

XferEngine::WireOps RmaAmProtocol::wire_ops() {
  XferEngine::WireOps ops;
  ops.put_chunk = [this](int target, void* dst, const void* src,
                         std::size_t bytes, XferEngine::Callback done) {
    put(target, dst, src, bytes, std::move(done));
  };
  ops.get_chunk = [this](int target, void* dst, const void* src,
                         std::size_t bytes, XferEngine::Callback done) {
    get(target, dst, src, bytes, std::move(done));
  };
  return ops;
}

}  // namespace gex
