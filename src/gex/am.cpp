#include "gex/am.hpp"

#include <atomic>
#include <cassert>
#include <cstdlib>
#include <cstring>
#include <new>
#include <thread>

#include "arch/atomics.hpp"
#include "arch/timer.hpp"
#include "gex/agg.hpp"
#include "gex/runtime.hpp"

namespace gex {

namespace {

// Refcounted frame buffer: poll() copies a frame out of the ring into one of
// these; every sub-message handler that adopt_frame()s holds a reference.
// The count is atomic because the master persona (and with it the right to
// run the deferred dispatches) may migrate to another thread before the
// last release.
struct FrameBuf {
  std::atomic<std::uint32_t> refs;
  std::uint32_t pad;  // keeps payload() 8-aligned (malloc is 16-aligned):
                      // sub-message bodies hold 8-byte-aligned serialized
                      // data and are read in place, never re-staged
  std::byte* payload() { return reinterpret_cast<std::byte*>(this + 1); }
};
static_assert(sizeof(FrameBuf) % 8 == 0);

}  // namespace

void* AmContext::adopt_frame() {
  assert(in_frame && frame && "adopt_frame on a non-frame message");
  static_cast<FrameBuf*>(frame)->refs.fetch_add(1, std::memory_order_relaxed);
  return frame;
}

AmEngine::AmEngine(Arena* arena, int my_rank)
    : arena_(arena),
      me_(my_rank),
      transport_(make_transport(arena, my_rank)),
      eager_max_(arena->config().eager_max) {}

AmEngine::~AmEngine() = default;

void release_frame(void* handle) {
  auto* fb = static_cast<FrameBuf*>(handle);
  if (fb->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    fb->~FrameBuf();
    std::free(fb);
  }
}

AmEngine::SendBuf AmEngine::prepare(int target, HandlerIdx h, std::size_t n,
                                    bool may_poll) {
  assert(target >= 0 && target < arena_->nranks());
  SendBuf sb;
  sb.size = n;
  sb.target = target;
  sb.handler = h;
  sb.may_poll = may_poll;
  // Rendezvous stages the payload in the shared heap and ships only a
  // descriptor — meaningless when the peer cannot read our memory, so on
  // such transports (socket) every payload goes inline, whatever
  // eager_max says. Callers above this layer cap themselves at
  // inline_max(); the assert catches the ones that forget.
  if (n <= eager_max_ || !transport_->shared_memory()) {
    assert(sizeof(WireHeader) + n <=
               transport_->max_record_payload() &&
           "payload exceeds one wire record on a non-shared-memory "
           "transport");
    for (;;) {
      auto t = transport_->try_reserve(target, sizeof(WireHeader) + n);
      if (t.payload) {
        sb.ticket = t;
        sb.data = static_cast<std::byte*>(t.payload) + sizeof(WireHeader);
        return sb;
      }
      // Target ring full: drain our own inbox so a cyclic backlog cannot
      // deadlock, then retry. Yield when the drain found nothing — on an
      // oversubscribed host the consumer needs the core to make room.
      // Off-consumer senders (may_poll false) only yield: poll() is
      // single-consumer and the real consumer is running elsewhere.
      arch::relaxed_inc(stats_.send_stalls);
      if (!may_poll || poll() == 0) std::this_thread::yield();
      arch::cpu_relax();
    }
  }
  // Rendezvous: payload goes to the shared heap; the ring only carries a
  // descriptor.
  sb.rendezvous = true;
  for (;;) {
    void* buf = arena_->heap().allocate(n);
    if (buf) {
      sb.data = buf;
      return sb;
    }
    arch::relaxed_inc(stats_.send_stalls);
    if (!may_poll || poll() == 0) std::this_thread::yield();
    arch::cpu_relax();
  }
}

AmEngine::SendBuf AmEngine::prepare_frame(int target, std::size_t n,
                                          HandlerIdx uniform_handler,
                                          bool uniform, bool may_poll) {
  assert(target >= 0 && target < arena_->nranks());
  assert(n <= max_frame_payload() && "frame exceeds one ring record");
  SendBuf sb;
  sb.size = n;
  sb.target = target;
  sb.frame = true;
  sb.uniform = uniform;
  sb.handler = uniform_handler;
  sb.may_poll = may_poll;
  for (;;) {
    auto t = transport_->try_reserve(target, sizeof(WireHeader) + n);
    if (t.payload) {
      sb.ticket = t;
      sb.data = static_cast<std::byte*>(t.payload) + sizeof(WireHeader);
      return sb;
    }
    arch::relaxed_inc(stats_.send_stalls);
    if (!may_poll || poll() == 0) std::this_thread::yield();
    arch::cpu_relax();
  }
}

void AmEngine::commit(SendBuf& sb) {
  if (!sb.rendezvous) {
    auto* wh = reinterpret_cast<WireHeader*>(
        static_cast<std::byte*>(sb.data) - sizeof(WireHeader));
    wh->handler = sb.handler;
    wh->flags = sb.frame ? (kWireFrame | (sb.uniform ? kWireUniform : 0))
                         : std::uint16_t{0};
    wh->src = me_;
    wh->send_ns = arch::now_ns();
    transport_->commit(sb.ticket);
    if (sb.frame)
      arch::relaxed_inc(stats_.sent_frames);
    else
      arch::relaxed_inc(stats_.sent_eager);
    return;
  }
  for (;;) {
    auto t = transport_->try_reserve(sb.target,
                                     sizeof(WireHeader) + sizeof(RdzvDesc));
    if (t.payload) {
      auto* wh = static_cast<WireHeader*>(t.payload);
      wh->handler = sb.handler;
      wh->flags = kWireRendezvous;
      wh->src = me_;
      wh->send_ns = arch::now_ns();
      auto* d = reinterpret_cast<RdzvDesc*>(wh + 1);
      d->buf = arena_->segmap().encode(sb.data);
      d->size = sb.size;
      transport_->commit(t);
      arch::relaxed_inc(stats_.sent_rendezvous);
      return;
    }
    arch::relaxed_inc(stats_.send_stalls);
    if (!sb.may_poll || poll() == 0) std::this_thread::yield();
    arch::cpu_relax();
  }
}

void AmEngine::send(int target, HandlerIdx h, const void* data,
                    std::size_t n) {
  SendBuf sb = prepare(target, h, n);
  if (n) std::memcpy(sb.data, data, n);
  commit(sb);
}

namespace {
// Wire prefix of an exchange() contribution; the value bytes follow.
struct ExchHdr {
  std::uint64_t key;
};
}  // namespace

void AmEngine::on_exchange(AmContext& cx) {
  ExchHdr h;
  std::memcpy(&h, cx.data, sizeof h);
  auto& slot = cx.engine->exchanges_[h.key][cx.src];
  const auto* val = static_cast<const std::byte*>(cx.data) + sizeof h;
  slot.assign(val, val + (cx.size - sizeof h));
}

void AmEngine::exchange(std::uint64_t key, const int* group, std::size_t n,
                        const void* mine, std::size_t bytes, void* out) {
  const HandlerIdx h = am_handler<&AmEngine::on_exchange>();
  std::size_t expected = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (group[i] == me_) continue;
    ++expected;
    SendBuf sb = prepare(group[i], h, sizeof(ExchHdr) + bytes);
    const ExchHdr eh{key};
    std::memcpy(sb.data, &eh, sizeof eh);
    if (bytes)
      std::memcpy(static_cast<std::byte*>(sb.data) + sizeof eh, mine, bytes);
    commit(sb);
  }
  auto& err = arena_->control().error_flag.value;
  for (;;) {
    // Re-find every iteration: poll()'s handlers mutate the map.
    const auto it = exchanges_.find(key);
    if (it != exchanges_.end() && it->second.size() >= expected) break;
    if (err.load(std::memory_order_acquire) != 0) break;
    // Frames delivered by poll() below only *enqueue* their dispatch (rpc
    // execution, reply staging) with the upper layer, and replies it has
    // already staged sit in this rank's Aggregator — both normally advance
    // only in user-level progress. While blocked here nothing else runs
    // that layer, and a peer waiting on one of our rpc replies never
    // reaches its own exchange(), deadlocking the collective. Drive the
    // upper layer's progress ourselves (or at least the flush when no
    // hook is installed, e.g. under bare-minimpi programs).
    if (Rank* r = self(); r != nullptr) {
      if (r->progress_hook)
        r->progress_hook();
      else if (r->agg != nullptr)
        r->agg->flush_all();
    }
    if (poll() == 0) std::this_thread::yield();
  }
  auto* dst = static_cast<std::byte*>(out);
  const auto it = exchanges_.find(key);
  for (std::size_t i = 0; i < n; ++i, dst += bytes) {
    if (group[i] == me_) {
      std::memcpy(dst, mine, bytes);
      continue;
    }
    if (it != exchanges_.end()) {
      const auto vi = it->second.find(group[i]);
      if (vi != it->second.end() && vi->second.size() == bytes) {
        std::memcpy(dst, vi->second.data(), bytes);
        continue;
      }
    }
    std::memset(dst, 0, bytes);  // failed job: zero-fill the missing slot
  }
  exchanges_.erase(key);
}

int AmEngine::poll(int max_msgs) {
  int handled = 0;
  while (handled < max_msgs) {
    int delivered = 0;
    auto visit = [&](void* rec, std::size_t rec_size) {
      auto* wh = static_cast<WireHeader*>(rec);
      if (wh->flags & kWireFrame) {
        // Copy the whole frame out of the ring once; sub-messages share the
        // refcounted buffer (handlers adopt_frame() instead of copying).
        const std::size_t fsize = rec_size - sizeof(WireHeader);
        auto* fb = static_cast<FrameBuf*>(
            std::malloc(sizeof(FrameBuf) + fsize));
        assert(fb && "frame staging allocation failed");
        ::new (&fb->refs) std::atomic<std::uint32_t>(1);
        std::memcpy(fb->payload(), wh + 1, fsize);
        if ((wh->flags & kWireUniform) && sink_ &&
            wh->handler == sink_handler_) {
          // Whole-frame sink delivery: one call covers every sub-message.
          // Count them first (headers only, cache-hot) so stats stay in
          // message units.
          for (std::size_t off = 0; off + sizeof(FrameMsgHeader) <= fsize;) {
            auto* mh =
                reinterpret_cast<FrameMsgHeader*>(fb->payload() + off);
            ++delivered;
            off += sizeof(FrameMsgHeader) +
                   arch::align_up(mh->size, kFrameAlign);
          }
          AmContext cx;
          cx.engine = this;
          cx.src = wh->src;
          cx.send_ns = wh->send_ns;
          cx.data = fb->payload();
          cx.size = fsize;
          cx.in_frame = true;
          cx.frame = fb;
          sink_(cx);
          release_frame(fb);
          arch::relaxed_inc(stats_.received_frames);
          return;
        }
        std::size_t off = 0;
        while (off + sizeof(FrameMsgHeader) <= fsize) {
          auto* mh =
              reinterpret_cast<FrameMsgHeader*>(fb->payload() + off);
          AmContext cx;
          cx.engine = this;
          cx.src = wh->src;
          cx.send_ns = wh->send_ns;
          cx.data = mh + 1;
          cx.size = mh->size;
          cx.in_frame = true;
          cx.frame = fb;
          am_handler_at(mh->handler)(cx);
          ++delivered;
          off += sizeof(FrameMsgHeader) +
                 arch::align_up(mh->size, kFrameAlign);
        }
        release_frame(fb);  // drop poll's own reference
        arch::relaxed_inc(stats_.received_frames);
        return;
      }
      AmContext cx;
      cx.engine = this;
      cx.src = wh->src;
      cx.send_ns = wh->send_ns;
      if (wh->flags & kWireRendezvous) {
        assert(transport_->shared_memory() &&
               "rendezvous record on a transport whose peers share no "
               "memory");
        auto* d = reinterpret_cast<RdzvDesc*>(wh + 1);
        void* buf = arena_->segmap().decode(d->buf);
        cx.data = buf;
        cx.size = static_cast<std::size_t>(d->size);
        cx.is_rendezvous = true;
        am_handler_at(wh->handler)(cx);
        if (!cx.adopted) arena_->heap().deallocate(buf);
      } else {
        cx.data = wh + 1;
        cx.size = rec_size - sizeof(WireHeader);
        am_handler_at(wh->handler)(cx);
      }
      delivered = 1;
    };
    bool got = transport_->try_consume(
        [](void* rec, std::size_t n, void* cxp) {
          (*static_cast<decltype(visit)*>(cxp))(rec, n);
        },
        &visit);
    if (!got) break;
    handled += delivered;
    arch::relaxed_add(stats_.received, static_cast<std::uint64_t>(delivered));
  }
  return handled;
}

}  // namespace gex
