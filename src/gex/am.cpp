#include "gex/am.hpp"

#include <cassert>
#include <cstring>

#include "arch/timer.hpp"

namespace gex {

AmEngine::SendBuf AmEngine::prepare(int target, AmHandler h, std::size_t n) {
  assert(target >= 0 && target < arena_->nranks());
  SendBuf sb;
  sb.size = n;
  sb.target = target;
  sb.handler = h;
  auto& ring = arena_->inbox(target);
  if (n <= eager_max_) {
    for (;;) {
      auto t = ring.try_reserve(sizeof(WireHeader) + n);
      if (t.payload) {
        sb.ticket = t;
        sb.data = static_cast<std::byte*>(t.payload) + sizeof(WireHeader);
        return sb;
      }
      // Target ring full: drain our own inbox so a cyclic backlog cannot
      // deadlock, then retry.
      ++stats_.send_stalls;
      poll();
      arch::cpu_relax();
    }
  }
  // Rendezvous: payload goes to the shared heap; the ring only carries a
  // descriptor.
  sb.rendezvous = true;
  for (;;) {
    void* buf = arena_->heap().allocate(n);
    if (buf) {
      sb.data = buf;
      return sb;
    }
    ++stats_.send_stalls;
    poll();  // receivers free rendezvous buffers as they drain
    arch::cpu_relax();
  }
}

void AmEngine::commit(SendBuf& sb) {
  if (!sb.rendezvous) {
    auto* wh = reinterpret_cast<WireHeader*>(
        static_cast<std::byte*>(sb.data) - sizeof(WireHeader));
    wh->handler = sb.handler;
    wh->src = me_;
    wh->flags = 0;
    wh->send_ns = arch::now_ns();
    arch::MpscByteRing::commit(sb.ticket);
    ++stats_.sent_eager;
    return;
  }
  auto& ring = arena_->inbox(sb.target);
  for (;;) {
    auto t = ring.try_reserve(sizeof(WireHeader) + sizeof(RdzvDesc));
    if (t.payload) {
      auto* wh = static_cast<WireHeader*>(t.payload);
      wh->handler = sb.handler;
      wh->src = me_;
      wh->flags = 1;
      wh->send_ns = arch::now_ns();
      auto* d = reinterpret_cast<RdzvDesc*>(wh + 1);
      d->buf = sb.data;
      d->size = sb.size;
      arch::MpscByteRing::commit(t);
      ++stats_.sent_rendezvous;
      return;
    }
    ++stats_.send_stalls;
    poll();
    arch::cpu_relax();
  }
}

void AmEngine::send(int target, AmHandler h, const void* data,
                    std::size_t n) {
  SendBuf sb = prepare(target, h, n);
  if (n) std::memcpy(sb.data, data, n);
  commit(sb);
}

int AmEngine::poll(int max_msgs) {
  int handled = 0;
  auto& ring = arena_->inbox(me_);
  while (handled < max_msgs) {
    bool got = ring.try_consume([&](void* rec, std::size_t rec_size) {
      auto* wh = static_cast<WireHeader*>(rec);
      AmContext cx;
      cx.engine = this;
      cx.src = wh->src;
      cx.send_ns = wh->send_ns;
      if (wh->flags & 1) {
        auto* d = reinterpret_cast<RdzvDesc*>(wh + 1);
        cx.data = d->buf;
        cx.size = static_cast<std::size_t>(d->size);
        cx.is_rendezvous = true;
        wh->handler(cx);
        if (!cx.adopted) arena_->heap().deallocate(d->buf);
      } else {
        cx.data = wh + 1;
        cx.size = rec_size - sizeof(WireHeader);
        wh->handler(cx);
      }
    });
    if (!got) break;
    ++handled;
    ++stats_.received;
  }
  return handled;
}

}  // namespace gex
