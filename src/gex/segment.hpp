// Segment registry: network-portable wire addressing.
//
// The AM RMA protocol used to ship raw virtual addresses in its PUT/GET/
// bounce records, which only works while every rank maps the arena at one
// address (the cross-mapped mmap). A network-portable wire must instead
// name remote memory the way GASNet-EX does: by *segment* and *offset*,
// resolved against the receiving rank's own mapping. This registry is that
// name space: every region a wire record may point into — the global
// shared heap (rendezvous and bounce-pool buffers), each rank's shared
// segment (upcxx::allocate, device segments), and the inbox-ring arena —
// gets a small id, and addresses cross the wire as (id, offset) pairs
// packed into one u64.
//
// Wire format: bits 63..48 = segment id (1-based; 0 is reserved invalid),
// bits 47..0 = byte offset into the segment. A leaked raw x86-64 pointer
// has zero top bits, so it decodes to the reserved id and is rejected —
// the registry doubles as the wire's address-hygiene check, which is why
// decode validates unconditionally (two compares; not debug-only).
//
// The registry is built once at Arena::create (before threads spawn or
// processes fork) and is immutable afterwards; every rank of the job holds
// an identical copy, so ids agree across the wire by construction — the
// same static-agreement contract as the AM handler registry.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace gex {

// A packed (segment id, offset) wire address.
using WireAddr = std::uint64_t;

inline constexpr int kWireAddrOffsetBits = 48;
inline constexpr std::uint64_t kWireAddrOffsetMask =
    (std::uint64_t{1} << kWireAddrOffsetBits) - 1;

class SegmentMap {
 public:
  // Registers [base, base+bytes) under the returned id (1-based). Call
  // only during Arena::create; `name` must outlive the map (string
  // literals).
  std::uint16_t add(const void* base, std::size_t bytes, const char* name);

  // Packs p into a wire address, or returns 0 when p lies in no registered
  // segment (the caller decides whether that is fatal).
  WireAddr try_encode(const void* p) const;

  // Unpacks a wire address, or returns nullptr when the id is unregistered
  // or the offset runs past the segment — i.e. when the value cannot have
  // been produced by try_encode against this job's layout.
  void* try_decode(WireAddr wa) const;

  // Aborting variants for the wire paths: an encode failure means a record
  // was about to carry an unregistered (process-private) address; a decode
  // failure means the wire delivered bytes that do not resolve through the
  // registry. Both are protocol bugs, never user errors.
  WireAddr encode(const void* p) const;
  void* decode(WireAddr wa) const;

  bool contains(const void* p) const { return try_encode(p) != 0; }
  std::size_t segment_count() const { return segs_.size(); }
  const char* segment_name(std::uint16_t id) const;

  // Total successful decodes (all ranks of a thread-backend job share the
  // map). Tests use the delta across a traffic burst to prove every record
  // that landed resolved through the registry.
  std::uint64_t decode_count() const {
    return decodes_.load(std::memory_order_relaxed);
  }

 private:
  struct Seg {
    const std::byte* base;
    std::size_t bytes;
    const char* name;
  };
  std::vector<Seg> segs_;  // index + 1 == id; few entries, linear scan
  mutable std::atomic<std::uint64_t> decodes_{0};
};

}  // namespace gex
