// Active-message RMA protocol — the `am` wire behind UPCXX_RMA_WIRE.
//
// The direct wire assumes the target's segment is cross-mapped (initiator
// memcpys straight into the target's heap — GASNet PSHM). A conduit without
// that property must move RMA through active messages instead; this file is
// that protocol, shaped like the real GASNet-EX AM-based rput/rget path:
//
//   PUT        [PutHdr{cookie,dst}][payload]      -> memcpy at target, ACK
//   PUT_FRAG   [FragHdr{cookie,n}][n descs][payload]
//                                                 -> scatter at target, ACK
//   GET        [GetHdr{cookie,src,bytes}]         -> target gathers, REPLY
//   GET_FRAG   [FragHdr{cookie,n}][n descs]       -> target gathers, REPLY
//   ACK        [AckHdr{cookie}]                   -> initiator completion
//   REPLY      [RepHdr{cookie}][payload]          -> initiator scatters,
//                                                    then completes
//
// Requests ride the AmEngine's existing two-protocol split: payloads at or
// below Config::eager_max travel inline through the inbox ring (the eager
// put of small transfers), larger ones are staged in the shared heap with
// only a descriptor in the ring (rendezvous) — the crossover
// bench/abl_am_protocol.cpp reports. Handlers are registered in the gex
// handler registry (gex/handlers.hpp) at static init, so forked ranks agree
// on indices; no code pointer ever rides the wire, and completion cookies
// are opaque initiator-local ids, not addresses.
//
// Execution model (the part that differs from the direct wire): data lands
// when the *target* runs the request handler inside its AmEngine::poll —
// i.e. during any internal progress the target makes — not at initiator
// injection. Ring FIFO per rank pair still guarantees the barrier ordering:
// requests issued before a barrier message are handled at the target before
// the barrier message is, so "put, barrier, read" keeps its meaning.
//
// Handler discipline: request handlers only copy bytes and *record* the ack
// or reply to send; nothing is injected from inside a handler (a reply send
// could spin on a full ring and re-enter the inbox ring's try_consume,
// which is not reentrant). poll() — called from the rank's internal
// progress right after AmEngine::poll — performs the deferred sends and
// fires initiator-side completion callbacks.
//
// Threading: per-rank object, master-persona discipline, not locked (same
// as AmEngine / XferEngine).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "arch/small_fn.hpp"
#include "gex/am.hpp"
#include "gex/xfer.hpp"

namespace gex {

class RmaAmProtocol {
 public:
  using Done = arch::UniqueFunction<void()>;

  // A contiguous run in the *remote* rank's address space (cross-mapped
  // today; an opaque segment offset on a future distributed backend).
  struct Frag {
    std::uint64_t addr;
    std::uint64_t bytes;
  };
  // A contiguous run in the initiator's address space.
  struct LocalFrag {
    void* ptr;
    std::size_t bytes;
  };

  explicit RmaAmProtocol(AmEngine* am) : am_(am) {}

  // Contiguous put: copies `bytes` from src into the wire before returning
  // (the initiator may reuse src immediately); `done` fires from a later
  // poll() once the target has memcpy'd the payload and its ack arrived.
  void put(int target, void* dst, const void* src, std::size_t bytes,
           Done done);

  // Contiguous get: `dst` must stay valid until `done` fires (the reply
  // handler scatters into it first).
  void get(int target, void* dst, const void* src, std::size_t bytes,
           Done done);

  // Scatter-put: local fragments are gathered directly into the request
  // payload (no intermediate staging buffer); the target scatters into
  // `dsts` in order. Total source and destination bytes must match.
  void put_fragments(int target, const std::vector<Frag>& dsts,
                     const std::vector<LocalFrag>& srcs, Done done);

  // Gather-get: the target gathers `srcs` into one reply; the initiator
  // scatters the payload into `dsts` in order (each must stay valid until
  // `done` fires).
  void get_fragments(int target, const std::vector<Frag>& srcs,
                     std::vector<LocalFrag> dsts, Done done);

  // Sends deferred acks/replies and fires due completion callbacks. Called
  // from internal progress after AmEngine::poll (upcxx::progress does;
  // run_rank's teardown loop does for raw-gex users). Returns the number
  // of actions performed.
  int poll();

  // No requests awaiting completion and nothing queued to send.
  bool idle() const {
    return pending_.empty() && acks_.empty() && replies_.empty() &&
           completed_.empty();
  }
  std::size_t outstanding() const { return pending_.size(); }

  // XferEngine chunk movers backed by this protocol — install with
  // XferEngine::set_wire to put the chunked engine on the am wire.
  XferEngine::WireOps wire_ops();

  struct Stats {
    std::uint64_t puts_sent = 0;
    std::uint64_t gets_sent = 0;
    std::uint64_t frag_puts_sent = 0;
    std::uint64_t frag_gets_sent = 0;
    std::uint64_t puts_handled = 0;
    std::uint64_t gets_handled = 0;
    std::uint64_t acks_sent = 0;
    std::uint64_t replies_sent = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  friend struct RmaAmHandlers;  // the registered AM handlers (rma_am.cpp)

  struct Pending {
    Done done;
    std::vector<LocalFrag> scatter;  // gets: local landing runs, wire order
  };
  struct QueuedAck {
    int target;
    std::uint64_t cookie;
  };
  struct QueuedReply {
    int target;
    std::uint64_t cookie;
    std::vector<Frag> gather;  // local (this rank's) source runs
  };

  std::uint64_t new_pending(Done done, std::vector<LocalFrag> scatter);

  AmEngine* am_;
  std::uint64_t next_cookie_ = 1;
  std::unordered_map<std::uint64_t, Pending> pending_;  // initiator side
  std::vector<QueuedAck> acks_;        // target side, deferred to poll()
  std::vector<QueuedReply> replies_;   // target side, deferred to poll()
  std::vector<std::uint64_t> completed_;  // acked/replied, done not yet run
  Stats stats_;
};

}  // namespace gex
