// Active-message RMA protocol — the `am` wire behind UPCXX_RMA_WIRE.
//
// The direct wire assumes the target's segment is cross-mapped (initiator
// memcpys straight into the target's heap — GASNet PSHM). A conduit without
// that property must move RMA through active messages instead; this file is
// that protocol, shaped like the real GASNet-EX AM-based rput/rget path:
//
//   PUT        [PutHdr{cookie,dst,nacks}][acks][payload]
//                                                 -> memcpy at target, ack
//   PUT_FRAG   [FragHdr{cookie,n,nacks}][acks][n descs][payload]
//                                                 -> scatter at target, ack
//   GET        [GetHdr{cookie,src,bytes,nacks}][acks]
//                                                 -> target gathers, REPLY
//   GET_FRAG   [FragHdr{cookie,n,nacks}][acks][n descs]
//                                                 -> target gathers, REPLY
//   ACK        [AckHdr{nacks}][acks]              -> initiator completions
//   REPLY      [RepHdr{cookie,nacks}][acks][payload]
//                                                 -> initiator scatters,
//                                                    then completes
//
// Requests ride the AmEngine's existing two-protocol split: payloads at or
// below Config::eager_max travel inline through the inbox ring (the eager
// put of small transfers), larger ones are staged in the shared heap with
// only a descriptor in the ring (rendezvous) — the crossover
// bench/abl_am_protocol.cpp reports. Handlers are registered in the gex
// handler registry (gex/handlers.hpp) at static init, so forked ranks agree
// on indices; no code pointer ever rides the wire, and completion cookies
// are opaque initiator-local ids, not addresses.
//
// Flow control (UPCXX_AM_WINDOW): at most `window` unacknowledged requests
// may be in flight to one target; further requests park in the target's
// sender-side queue and go out as acks retire credits, so a flood of puts
// queues locally instead of spin-polling against the target's full ring and
// staging heap. The queue itself is bounded (kQueueSlack beyond the
// window); when it fills, the *injecting* call makes progress — polling our
// own inbox, which retires credits — until a slot frees, which is
// deadlock-free for the same reason the AmEngine's ring-full spin is: every
// stuck sender still drains its own inbox. Replies and acks never consume
// credits (a credit-gated ack would deadlock the very window it retires).
//
// Ack aggregation: every ack this rank owes is batched — all acks owed to
// one target per poll() collapse into a single multi-ack record, and any
// request or reply headed toward a peer carries the acks owed to that peer
// piggybacked after its header. A chunked transfer's ack traffic therefore
// costs a handful of ring transactions instead of one per chunk.
//
// Pooled put staging: a put payload too large to ride inline goes through
// a per-peer pool of recycled shared-heap bounce buffers instead of the
// AmEngine's allocate-per-message rendezvous path. The initiator copies
// into a pool buffer, ships a small inline descriptor record, and gets the
// buffer back when the target's ack arrives (the ack that already drives
// completion — no extra traffic). The pool is bounded by the credit window
// (at most `window` buffers can be in flight), so a steady chunked stream
// cycles through the same few cache-hot buffers with no allocator traffic
// — which is what lets the am wire track the direct wire's bandwidth
// instead of paying a cold DRAM round trip per chunk.
//
// Execution model (the part that differs from the direct wire): data lands
// when the *target* runs the request handler inside its AmEngine::poll —
// i.e. during any internal progress the target makes — not at initiator
// injection. Ring FIFO per rank pair still guarantees the barrier ordering:
// requests issued before a barrier message are handled at the target before
// the barrier message is, so "put, barrier, read" keeps its meaning —
// upcxx's barrier entry drains both the XferEngine's pending chunks and
// this protocol's sender-side queue before contributing to the barrier.
//
// Handler discipline: request handlers only copy bytes and *record* the ack
// or reply to send; nothing is injected from inside a handler (a reply send
// could spin on a full ring and re-enter the inbox ring's try_consume,
// which is not reentrant). poll() — called from the rank's internal
// progress right after AmEngine::poll — performs the deferred sends and
// fires initiator-side completion callbacks.
//
// Threading: per-rank object, master-persona discipline, not locked (same
// as AmEngine / XferEngine).
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "arch/small_fn.hpp"
#include "gex/am.hpp"
#include "gex/xfer.hpp"

namespace gex {

class RmaAmProtocol {
 public:
  using Done = arch::UniqueFunction<void()>;

  // Sender-side queue slots beyond the window before an injecting call
  // blocks (making progress while it waits). Bounds the payload copies a
  // flood can park in private memory.
  static constexpr std::size_t kQueueSlack = 64;

  // A contiguous run in the *remote* rank's address space. In memory this
  // holds the initiator's view of the address (cross-mapped today); on the
  // wire it always travels as a (segment id, offset) pair resolved at the
  // owning rank — see wire_enc/wire_dec below.
  struct Frag {
    std::uint64_t addr;
    std::uint64_t bytes;
  };
  // A contiguous run in the initiator's address space.
  struct LocalFrag {
    void* ptr;
    std::size_t bytes;
  };

  // `window` is a resolved value (gex::resolve_am_window at launch).
  explicit RmaAmProtocol(AmEngine* am,
                         std::uint32_t window = kDefaultAmWindow)
      : am_(am), window_(window ? window : 1) {}

  // Contiguous put: the payload leaves src before this call returns (the
  // initiator may reuse src immediately) — copied into the wire when a
  // credit is available, into the sender-side queue otherwise. `done` fires
  // from a later poll() once the target has memcpy'd the payload and its
  // ack arrived.
  void put(int target, void* dst, const void* src, std::size_t bytes,
           Done done);

  // Contiguous get: `dst` must stay valid until `done` fires (the reply
  // handler scatters into it first).
  void get(int target, void* dst, const void* src, std::size_t bytes,
           Done done);

  // Scatter-put: local fragments are gathered directly into the request
  // payload (or the queue buffer when the window is full); the target
  // scatters into `dsts` in order. Total source and destination bytes must
  // match.
  void put_fragments(int target, const std::vector<Frag>& dsts,
                     const std::vector<LocalFrag>& srcs, Done done);

  // Gather-get: the target gathers `srcs` into one reply; the initiator
  // scatters the payload into `dsts` in order (each must stay valid until
  // `done` fires).
  void get_fragments(int target, const std::vector<Frag>& srcs,
                     std::vector<LocalFrag> dsts, Done done);

  // Fires due completion callbacks (returning their credits and releasing
  // queued requests), sends queued requests as credits allow, and flushes
  // deferred acks/replies — acks owed to one target coalesce into a single
  // multi-ack record per call. Called from internal progress after
  // AmEngine::poll (upcxx::progress does; run_rank's teardown loop does for
  // raw-gex users). Returns the number of actions performed.
  //
  // Equivalent to poll_requests() + flush_acks(). Drivers that issue more
  // protocol traffic between the two (upcxx internal progress runs the
  // XferEngine in between, whose chunk requests are the natural piggyback
  // carriers) call the halves explicitly so owed acks get a chance to ride
  // reverse traffic before a standalone record is spent on them.
  int poll() { return poll_requests() + flush_acks(); }

  // Completions, queued-request release, and deferred replies — everything
  // except standalone ack records.
  int poll_requests();

  // One multi-ack record per target still owed acks after the piggyback
  // opportunities above.
  int flush_acks();

  // No requests awaiting completion (in flight or queued) and nothing
  // deferred to send.
  bool idle() const {
    if (!pending_.empty() || !replies_.empty() || !completed_.empty())
      return false;
    for (const auto& p : peers_)
      if (!p.sendq.empty() || !p.acks_owed.empty()) return false;
    return true;
  }
  // Requests not yet completed, whether on the wire or still queued.
  std::size_t outstanding() const { return pending_.size(); }
  // Requests parked sender-side waiting for credits.
  std::size_t queued() const {
    std::size_t n = 0;
    for (const auto& p : peers_) n += p.sendq.size();
    return n;
  }
  std::uint32_t window() const { return window_; }

  // True when a request to `target` would go straight onto the wire (a
  // credit is free and nothing is queued ahead of it). The XferEngine's
  // chunk movers consult this (WireOps::ready) so chunks wait in the
  // engine — where they cost nothing — instead of piling up payload copies
  // in the sender-side queue.
  bool can_accept(int target) const {
    for (const auto& p : peers_)
      if (p.target == target)
        return p.sendq.empty() && p.outstanding < window_;
    return true;
  }

  // Teardown giving-up path: a peer (or the whole job) failed, its acks and
  // replies will never arrive. Releases every credit, cancels queued and
  // in-flight requests (their `done` callbacks are destroyed, not fired —
  // the arena error flag is the failure signal), and drops owed acks so no
  // later poll tries to send into a dead rank's possibly-full ring.
  void fail_all_peers();

  // XferEngine chunk movers backed by this protocol — install with
  // XferEngine::set_wire to put the chunked engine on the am wire.
  XferEngine::WireOps wire_ops();

  struct Stats {
    std::uint64_t puts_sent = 0;
    std::uint64_t gets_sent = 0;
    std::uint64_t frag_puts_sent = 0;
    std::uint64_t frag_gets_sent = 0;
    std::uint64_t puts_handled = 0;
    std::uint64_t gets_handled = 0;
    std::uint64_t acks_sent = 0;       // standalone multi-ack records
    std::uint64_t ack_cookies_sent = 0;  // cookies in standalone records
    std::uint64_t acks_piggybacked = 0;  // cookies on reverse traffic
    std::uint64_t replies_sent = 0;
    std::uint64_t requests_queued = 0;   // parked for lack of a credit
    std::uint64_t send_stalls = 0;       // spins waiting for a queue slot
    std::uint64_t max_outstanding = 0;   // peak in-flight to any one target
    std::uint64_t queued_peak = 0;       // peak sender-side queue depth
    std::uint64_t cancelled = 0;         // dropped by fail_all_peers
    std::uint64_t stale_completions = 0;  // acks/replies after a cancel
    std::uint64_t puts_staged = 0;       // puts through the bounce pool
    std::uint64_t stage_allocs = 0;      // pool misses (fresh heap blocks)
  };
  const Stats& stats() const { return stats_; }

 private:
  friend struct RmaAmHandlers;  // the registered AM handlers (rma_am.cpp)

  // A pool bounce buffer (shared-heap block, identical mapping in every
  // rank — the same addressing contract as rendezvous buffers).
  struct StageBuf {
    void* p = nullptr;
    std::size_t cap = 0;
  };
  struct Pending {
    int target;
    Done done;
    std::vector<LocalFrag> scatter;  // gets: local landing runs, wire order
    StageBuf stage;  // staged puts: recycled into the pool on ack
  };
  // A window-blocked request. Puts own their payload (the caller's source
  // buffer is reusable the moment the injecting call returns); gets keep
  // their scatter list in pending_ like every other get.
  struct QueuedReq {
    enum Kind : std::uint8_t { kPut, kGet, kPutFrag, kGetFrag };
    Kind kind;
    std::uint64_t cookie;
    std::vector<Frag> remote;  // put/get: one entry; frags: the desc list
    std::vector<std::byte> payload;  // puts only
  };
  struct QueuedReply {
    int target;
    std::uint64_t cookie;
    std::vector<Frag> gather;  // local (this rank's) source runs
  };
  // Per-target sender and receiver state: the credit window, the queue of
  // window-blocked requests, and the acks this rank owes that target.
  struct Peer {
    int target;
    std::uint32_t outstanding = 0;  // requests on the wire, not yet retired
    std::deque<QueuedReq> sendq;
    std::vector<std::uint64_t> acks_owed;
    std::vector<StageBuf> stage_pool;  // free bounce buffers, ready to reuse
  };

  // Wire-address translation (gex/segment.hpp): every remote/staged
  // address leaving this rank is packed to (segment id, offset) at record
  // encode, and every address arriving is resolved against this rank's own
  // mapping at decode — no wire byte depends on the peer's virtual-address
  // layout. Both abort on addresses outside the registered segments.
  WireAddr wire_enc(std::uint64_t addr) const;
  std::uint64_t wire_dec(WireAddr wa) const;

  Peer& peer(int target);
  // Null .p when the job is failing and the heap is exhausted (the blocks
  // may be pinned by a dead peer's unacked requests) — the caller cancels.
  StageBuf acquire_stage(Peer& p, std::size_t bytes);
  void recycle_stage(Peer& p, StageBuf buf);
  void cancel_sent(Peer& p, std::uint64_t cookie);
  std::uint64_t new_pending(int target, Done done,
                            std::vector<LocalFrag> scatter);
  // Drains the acks owed to `target` for embedding in an outgoing record.
  std::vector<std::uint64_t> take_acks(int target);
  bool has_credit(const Peer& p) const {
    return p.sendq.empty() && p.outstanding < window_;
  }
  void note_sent(Peer& p) {
    ++p.outstanding;
    if (p.outstanding > stats_.max_outstanding)
      stats_.max_outstanding = p.outstanding;
  }
  void enqueue(Peer& p, QueuedReq q);
  // Sends queued requests while credits allow; returns actions performed.
  int flush_sendq(Peer& p);

  // Wire writers. Each drains the target's owed acks into the record.
  void send_put(int target, std::uint64_t cookie, const Frag& dst,
                const void* src);
  void send_get(int target, std::uint64_t cookie, const Frag& src);
  void send_put_frag(int target, std::uint64_t cookie,
                     const std::vector<Frag>& dsts, const LocalFrag* srcs,
                     std::size_t nsrcs, std::size_t total);
  void send_get_frag(int target, std::uint64_t cookie,
                     const std::vector<Frag>& srcs);

  AmEngine* am_;
  std::uint32_t window_;
  std::uint64_t next_cookie_ = 1;
  std::unordered_map<std::uint64_t, Pending> pending_;  // initiator side
  // Few peers; linear scan. A deque so references stay valid when a
  // completion callback's request creates a new peer mid-iteration.
  std::deque<Peer> peers_;
  std::vector<QueuedReply> replies_;   // target side, deferred to poll()
  std::vector<std::uint64_t> completed_;  // acked/replied, done not yet run
  Stats stats_;
};

}  // namespace gex
