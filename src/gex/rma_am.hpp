// Active-message RMA protocol — the `am` wire behind UPCXX_RMA_WIRE.
//
// The direct wire assumes the target's segment is cross-mapped (initiator
// memcpys straight into the target's heap — GASNet PSHM). A conduit without
// that property must move RMA through active messages instead; this file is
// that protocol, shaped like the real GASNet-EX AM-based rput/rget path:
//
//   PUT        [PutHdr{cookie,dst,nacks}][acks][payload]
//                                                 -> memcpy at target, ack
//   PUT_FRAG   [FragHdr{cookie,n,nacks}][acks][n descs][payload]
//                                                 -> scatter at target, ack
//   GET        [GetHdr{cookie,src,bytes,nacks}][acks]
//                                                 -> target gathers, REPLY
//   GET_FRAG   [FragHdr{cookie,n,nacks}][acks][n descs]
//                                                 -> target gathers, REPLY
//   ACK        [AckHdr{nacks}][acks]              -> initiator completions
//   REPLY      [RepHdr{cookie,nacks}][acks][payload]
//                                                 -> initiator scatters,
//                                                    then completes
//
// Requests ride the AmEngine's existing two-protocol split: payloads at or
// below Config::eager_max travel inline through the inbox ring (the eager
// put of small transfers), larger ones are staged in the shared heap with
// only a descriptor in the ring (rendezvous) — the crossover
// bench/abl_am_protocol.cpp reports. Handlers are registered in the gex
// handler registry (gex/handlers.hpp) at static init, so forked ranks agree
// on indices; no code pointer ever rides the wire, and completion cookies
// are opaque initiator-local ids, not addresses.
//
// Flow control (UPCXX_AM_WINDOW): at most `window` unacknowledged requests
// may be in flight to one target; further requests park in the target's
// sender-side queue and go out as acks retire credits, so a flood of puts
// queues locally instead of spin-polling against the target's full ring and
// staging heap. The queue itself is bounded (kQueueSlack beyond the
// window); when it fills, the *injecting* call makes progress — polling our
// own inbox, which retires credits — until a slot frees, which is
// deadlock-free for the same reason the AmEngine's ring-full spin is: every
// stuck sender still drains its own inbox. Replies and acks never consume
// credits (a credit-gated ack would deadlock the very window it retires).
//
// Ack aggregation: every ack this rank owes is batched — all acks owed to
// one target per poll() collapse into a single multi-ack record, and any
// request or reply headed toward a peer carries the acks owed to that peer
// piggybacked after its header. A chunked transfer's ack traffic therefore
// costs a handful of ring transactions instead of one per chunk.
//
// Pooled put staging: a put payload too large to ride inline goes through
// a per-peer pool of recycled shared-heap bounce buffers instead of the
// AmEngine's allocate-per-message rendezvous path. The initiator copies
// into a pool buffer, ships a small inline descriptor record, and gets the
// buffer back when the target's ack arrives (the ack that already drives
// completion — no extra traffic). The pool is bounded by the credit window
// (at most `window` buffers can be in flight), so a steady chunked stream
// cycles through the same few cache-hot buffers with no allocator traffic
// — which is what lets the am wire track the direct wire's bandwidth
// instead of paying a cold DRAM round trip per chunk.
//
// Pooled reply staging (the get-direction mirror): a GET reply too large
// to ride inline goes through the *target's* per-peer pool of recycled
// shared-heap buffers instead of the AmEngine's allocate-per-message
// rendezvous path. The target gathers into a pool buffer, ships a small
// GET_REPLY_STAGED descriptor (wire addresses only, exactly as every
// staged-put buffer), and gets the buffer back when the initiator's
// consumption ack arrives — a second cookie namespace ("racks") batched
// and piggybacked through the very same machinery as request acks, so a
// chunked rget stream recycles the same cache-hot blocks with no extra
// record traffic. At most `window` staged replies may be awaiting
// consumption per peer; past that bound (or on a momentarily exhausted
// heap) the reply falls back to the old inline/rendezvous REPLY path —
// staging is an optimization, never a requirement.
//
// Adaptive window (UPCXX_AM_WINDOW=auto, the default): instead of a
// hand-set window, each peer runs a small BBR-style controller
// (AmWindowController below) fed by request→ack round-trip times. While
// acks return within an envelope of the observed RTT floor the window
// grows (one credit per windowful of timely acks); when acks lag —
// queuing at the target, or window × chunk outgrowing the cache — it
// backs off multiplicatively (at most once per windowful). The window
// therefore converges on the host's own knee without any tuning, within
// [1, kMaxAmWindow]. An explicit UPCXX_AM_WINDOW=<n> pins it (tests, the
// am-window-1 CI job). Every window-derived bound (pools, queue slack,
// engine back-pressure) reads the *current* window, so the whole state
// machine tracks the moving operating point.
//
// Execution model (the part that differs from the direct wire): data lands
// when the *target* runs the request handler inside its AmEngine::poll —
// i.e. during any internal progress the target makes — not at initiator
// injection. Ring FIFO per rank pair still guarantees the barrier ordering:
// requests issued before a barrier message are handled at the target before
// the barrier message is, so "put, barrier, read" keeps its meaning —
// upcxx's barrier entry drains both the XferEngine's pending chunks and
// this protocol's sender-side queue before contributing to the barrier.
//
// Handler discipline: request handlers only copy bytes and *record* the ack
// or reply to send; nothing is injected from inside a handler (a reply send
// could spin on a full ring and re-enter the inbox ring's try_consume,
// which is not reentrant). poll() — called from the rank's internal
// progress right after AmEngine::poll — performs the deferred sends and
// fires initiator-side completion callbacks.
//
// Threading: per-rank object with a split issue path. The progress persona
// (worker 0) is the sole *consumer* — it alone runs AmEngine::poll, every
// request/reply handler, poll_requests/flush_acks, and every completion
// callback. Request *injection* (put/get — the XferEngine chunk movers) is
// additionally open to progress-pool helpers running
// XferEngine::issue_pass: the per-peer state they touch (sendq, owed acks,
// the put staging pool) sits behind a per-peer spinlock with bounded
// critical sections (never held across a send or a spin), the credit
// window is an atomic claimed by CAS, and the pending map has its own
// lock. Helpers never poll: their AmEngine::prepare calls pass
// may_poll=false (yield-spin on a full ring, which the *target* drains
// independently), and on an exhausted staging heap they requeue the
// request into the sendq instead of poll-spinning. on_consumer() — a
// thread-local marker stamped by the constructor and refreshed by every
// poll_requests — tells the two roles apart. Reply staging
// (reply_pool/reply_out) stays consumer-only plain state.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "arch/small_fn.hpp"
#include "arch/spinlock.hpp"
#include "gex/am.hpp"
#include "gex/xfer.hpp"

namespace gex {

// Per-target adaptive window controller (BBR-style). Fed one request→ack
// round-trip time per retired credit; maintains an RTT floor (true min
// with a slow upward drift so a stale floor from a quiet period cannot
// permanently misjudge a new traffic regime) and classifies each ack as
// timely iff rtt <= floor × envelope + kAmRttSlackNs. A windowful of
// consecutive timely acks grows the window by one (additive probe — the
// growth rate is one per RTT, like BBR's probe phase); a late ack shrinks
// it multiplicatively (×1/2), at most once per windowful so one
// scheduler blip doesn't collapse the pipeline. Window stays in
// [1, max]. Pure state machine — no clock of its own — so tests drive it
// with synthetic delays.
class AmWindowController {
 public:
  // Absolute slack added to the envelope: sub-microsecond shared-memory
  // RTT floors make a purely multiplicative envelope brittle (any
  // scheduler blip is 100× the floor), so lateness additionally requires
  // this much absolute queuing delay. The value sets the equilibrium
  // depth: an ack's RTT includes the service time of the window's other
  // in-flight chunks, so the controller settles near
  // (envelope×floor + slack) / chunk_service_time — 100 µs over ~10 µs
  // staged-chunk copies lands in the 8–16 range the window-sweep knee
  // (bench/abl_am_protocol) identifies, while still reacting to real
  // multi-window backlog rather than scheduler jitter.
  static constexpr std::uint64_t kAmRttSlackNs = 100'000;

  AmWindowController(std::uint32_t start, std::uint32_t max,
                     double envelope)
      : envelope_(envelope >= 1.0 ? envelope : 1.0),
        win_(start ? start : 1),
        max_(max ? max : 1) {
    if (win_.load(std::memory_order_relaxed) > max_)
      win_.store(max_, std::memory_order_relaxed);
  }

  // Feeds one ack RTT; returns +1 (window grew), -1 (shrank), 0 (held).
  // Single-writer (the consumer's completion loop); window() may be read
  // concurrently by helper issue passes, hence the atomic win_.
  int on_ack(std::uint64_t rtt_ns) {
    if (rtt_floor_ == 0 || rtt_ns < rtt_floor_) {
      rtt_floor_ = rtt_ns;
    } else {
      // Slow drift toward the observed RTT so the floor adapts when the
      // regime genuinely changes (~256 acks to cross a sustained gap).
      rtt_floor_ += (rtt_ns - rtt_floor_) >> 8;
    }
    ++since_shrink_;
    const std::uint32_t w = win_.load(std::memory_order_relaxed);
    const double bound =
        static_cast<double>(rtt_floor_) * envelope_ +
        static_cast<double>(kAmRttSlackNs);
    if (static_cast<double>(rtt_ns) > bound) {
      timely_ = 0;
      // One backoff per windowful: the acks already in flight when the
      // window shrank will mostly look late too — don't charge them.
      if (since_shrink_ >= w && w > 1) {
        win_.store(w / 2 > 0 ? w / 2 : 1, std::memory_order_relaxed);
        since_shrink_ = 0;
        return -1;
      }
      return 0;
    }
    if (++timely_ >= w && w < max_) {
      timely_ = 0;
      win_.store(w + 1, std::memory_order_relaxed);
      return +1;
    }
    return 0;
  }

  std::uint32_t window() const {
    return win_.load(std::memory_order_relaxed);
  }
  std::uint32_t max_window() const { return max_; }
  std::uint64_t rtt_floor_ns() const { return rtt_floor_; }

 private:
  double envelope_;
  std::atomic<std::uint32_t> win_;
  std::uint32_t max_;
  std::uint64_t rtt_floor_ = 0;
  std::uint32_t timely_ = 0;        // consecutive timely acks since a grow
  std::uint32_t since_shrink_ = 0;  // acks since the last backoff
};

class RmaAmProtocol {
 public:
  using Done = arch::UniqueFunction<void()>;

  // Sender-side queue slots beyond the window before an injecting call
  // blocks (making progress while it waits). Bounds the payload copies a
  // flood can park in private memory.
  static constexpr std::size_t kQueueSlack = 64;

  // A contiguous run in the *remote* rank's address space. In memory this
  // holds the initiator's view of the address (cross-mapped today); on the
  // wire it always travels as a (segment id, offset) pair resolved at the
  // owning rank — see wire_enc/wire_dec below.
  struct Frag {
    std::uint64_t addr;
    std::uint64_t bytes;
  };
  // A contiguous run in the initiator's address space.
  struct LocalFrag {
    void* ptr;
    std::size_t bytes;
  };

  // `w` is a resolved policy (gex::resolve_am_window at launch): a pinned
  // window, or the adaptive controller started at w.window per target.
  // The adaptive ceiling is footprint-clamped: ceiling × am-wire chunk is
  // the in-flight staging working set (same cache argument as the
  // UPCXX_AM_CHUNK_KB clamp), so letting RTT drift walk the window to
  // kMaxAmWindow at 64K chunks would trade a 4MB working set for depth
  // that is pure cache thrash. Budget 1MB, never below the start window.
  // Pre-creates one Peer per rank (Config::ranks), so peer() is an
  // index — no container mutation races with helper issue passes.
  explicit RmaAmProtocol(AmEngine* am,
                         AmWindowSetting w = {false, kDefaultAmWindow},
                         double rtt_envelope = kDefaultAmRttEnvelope);

  static std::uint32_t adaptive_ceiling(AmEngine* am);

  // Contiguous put: the payload leaves src before this call returns (the
  // initiator may reuse src immediately) — copied into the wire when a
  // credit is available, into the sender-side queue otherwise. `done` fires
  // from a later poll() once the target has memcpy'd the payload and its
  // ack arrived.
  void put(int target, void* dst, const void* src, std::size_t bytes,
           Done done);

  // Contiguous get: `dst` must stay valid until `done` fires (the reply
  // handler scatters into it first).
  void get(int target, void* dst, const void* src, std::size_t bytes,
           Done done);

  // Scatter-put: local fragments are gathered directly into the request
  // payload (or the queue buffer when the window is full); the target
  // scatters into `dsts` in order. Total source and destination bytes must
  // match.
  void put_fragments(int target, const std::vector<Frag>& dsts,
                     const std::vector<LocalFrag>& srcs, Done done);

  // Gather-get: the target gathers `srcs` into one reply; the initiator
  // scatters the payload into `dsts` in order (each must stay valid until
  // `done` fires).
  void get_fragments(int target, const std::vector<Frag>& srcs,
                     std::vector<LocalFrag> dsts, Done done);

  // Fires due completion callbacks (returning their credits and releasing
  // queued requests), sends queued requests as credits allow, and flushes
  // deferred acks/replies — acks owed to one target coalesce into a single
  // multi-ack record per call. Called from internal progress after
  // AmEngine::poll (upcxx::progress does; run_rank's teardown loop does for
  // raw-gex users). Returns the number of actions performed.
  //
  // Equivalent to poll_requests() + flush_acks(). Drivers that issue more
  // protocol traffic between the two (upcxx internal progress runs the
  // XferEngine in between, whose chunk requests are the natural piggyback
  // carriers) call the halves explicitly so owed acks get a chance to ride
  // reverse traffic before a standalone record is spent on them.
  int poll() { return poll_requests() + flush_acks(); }

  // Completions, queued-request release, and deferred replies — everything
  // except standalone ack records.
  int poll_requests();

  // One multi-ack record per target still owed acks after the piggyback
  // opportunities above.
  int flush_acks();

  // No requests awaiting completion (in flight or queued), nothing
  // deferred to send, and no staged reply still awaiting its consumption
  // ack (the buffer is pinned until the rack arrives).
  bool idle() const;
  // Requests not yet completed, whether on the wire or still queued.
  std::size_t outstanding() const {
    arch::SpinGuard g(pending_mu_);
    return pending_.size();
  }
  // Requests parked sender-side waiting for credits.
  std::size_t queued() const {
    std::size_t n = 0;
    for (const auto& p : peers_)
      n += p->sendq_n.load(std::memory_order_acquire);
    return n;
  }
  // The pinned window, or — adaptive mode — the controller ceiling
  // (kMaxAmWindow): in both cases the hard bound every per-target window
  // and pool respects, which is what invariant checks compare against.
  std::uint32_t window() const { return adaptive_ ? max_window_ : window_; }
  bool adaptive_window() const { return adaptive_; }
  // The current operating window for `target` (moves in adaptive mode).
  std::uint32_t window_now(int target) const {
    if (target < 0 || static_cast<std::size_t>(target) >= peers_.size())
      return window_;
    return window_now(*peers_[target]);
  }

  // True when a request to `target` would go straight onto the wire (a
  // credit is free and nothing is queued ahead of it). The XferEngine's
  // chunk movers consult this (WireOps::ready) so chunks wait in the
  // engine — where they cost nothing — instead of piling up payload copies
  // in the sender-side queue. Reads the *current* window, so engine
  // back-pressure follows an adaptive window as it moves: a shrink simply
  // reports not-ready until in-flight requests drain below the new bound.
  // Pure atomic peeks — safe (and advisory) from any thread.
  bool can_accept(int target) const {
    if (target < 0 || static_cast<std::size_t>(target) >= peers_.size())
      return true;
    const Peer& p = *peers_[target];
    return p.sendq_n.load(std::memory_order_acquire) == 0 &&
           p.outstanding.load(std::memory_order_relaxed) < window_now(p);
  }

  // Teardown giving-up path: a peer (or the whole job) failed, its acks and
  // replies will never arrive. Releases every credit, cancels queued and
  // in-flight requests (their `done` callbacks are destroyed, not fired —
  // the arena error flag is the failure signal), and drops owed acks so no
  // later poll tries to send into a dead rank's possibly-full ring.
  void fail_all_peers();

  // XferEngine chunk movers backed by this protocol — install with
  // XferEngine::set_wire to put the chunked engine on the am wire.
  XferEngine::WireOps wire_ops();

  struct Stats {
    std::uint64_t puts_sent = 0;
    std::uint64_t gets_sent = 0;
    std::uint64_t frag_puts_sent = 0;
    std::uint64_t frag_gets_sent = 0;
    std::uint64_t puts_handled = 0;
    std::uint64_t gets_handled = 0;
    std::uint64_t acks_sent = 0;       // standalone multi-ack records
    std::uint64_t ack_cookies_sent = 0;  // cookies in standalone records
    std::uint64_t acks_piggybacked = 0;  // cookies on reverse traffic
    std::uint64_t replies_sent = 0;
    std::uint64_t requests_queued = 0;   // parked for lack of a credit
    std::uint64_t send_stalls = 0;       // spins waiting for a queue slot
    std::uint64_t max_outstanding = 0;   // peak in-flight to any one target
    std::uint64_t queued_peak = 0;       // peak sender-side queue depth
    std::uint64_t cancelled = 0;         // dropped by fail_all_peers
    std::uint64_t stale_completions = 0;  // acks/replies after a cancel
    std::uint64_t puts_staged = 0;       // puts through the bounce pool
    std::uint64_t stage_allocs = 0;      // pool misses (fresh heap blocks)
    // Pooled reply staging (target side unless noted).
    std::uint64_t replies_staged = 0;    // GET replies through the pool
    std::uint64_t reply_pool_hits = 0;   // stage acquisitions from the pool
    std::uint64_t reply_stage_allocs = 0;  // fresh heap blocks for replies
    std::uint64_t reply_fallbacks = 0;   // bound/heap exhausted -> old path
    std::uint64_t staged_replies_handled = 0;  // initiator: consumed
    std::uint64_t reply_ack_cookies_sent = 0;  // racks in standalone records
    std::uint64_t reply_acks_piggybacked = 0;  // racks on reverse traffic
    // Adaptive window controller, summed across peers.
    std::uint64_t window_grow = 0;
    std::uint64_t window_shrink = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  friend struct RmaAmHandlers;  // the registered AM handlers (rma_am.cpp)

  // A pool bounce buffer (shared-heap block, identical mapping in every
  // rank — the same addressing contract as rendezvous buffers).
  struct StageBuf {
    void* p = nullptr;
    std::size_t cap = 0;
  };
  struct Pending {
    int target;
    Done done;
    std::vector<LocalFrag> scatter;  // gets: local landing runs, wire order
    StageBuf stage;  // staged puts: recycled into the pool on ack
    std::uint64_t send_ns = 0;  // wire-send time (adaptive RTT sampling)
  };
  // A window-blocked request. Puts own their payload (the caller's source
  // buffer is reusable the moment the injecting call returns); gets keep
  // their scatter list in pending_ like every other get.
  struct QueuedReq {
    enum Kind : std::uint8_t { kPut, kGet, kPutFrag, kGetFrag };
    Kind kind;
    std::uint64_t cookie;
    std::vector<Frag> remote;  // put/get: one entry; frags: the desc list
    std::vector<std::byte> payload;  // puts only
  };
  struct QueuedReply {
    int target;
    std::uint64_t cookie;
    std::vector<Frag> gather;  // local (this rank's) source runs
    bool frag;                 // GET_FRAG origin (staged record selection)
  };
  // Per-target sender and receiver state: the credit window (with its
  // adaptive controller), the queue of window-blocked requests, the acks
  // and reply-consumption acks this rank owes that target, and both
  // staging pools (put bounce buffers as initiator, reply buffers as
  // target). `mu` guards sendq / acks_owed / racks_owed / stage_pool —
  // the state both the consumer and helper issue passes touch; critical
  // sections stay bounded (never across a send or a spin). `outstanding`
  // is the credit counter, claimed by CAS against window_now; `sendq_n`
  // mirrors sendq.size() for lock-free peeks (can_accept, credits).
  // reply_pool/reply_out are consumer-only plain state.
  struct Peer {
    Peer(int t, std::uint32_t start, std::uint32_t max, double envelope)
        : target(t), ctrl(start, max, envelope) {}
    const int target;
    AmWindowController ctrl;
    std::atomic<std::uint32_t> outstanding{0};  // on the wire, not retired
    std::atomic<std::size_t> sendq_n{0};        // mirrors sendq.size()
    mutable arch::Spinlock mu;
    std::deque<QueuedReq> sendq;
    std::vector<std::uint64_t> acks_owed;
    std::vector<std::uint64_t> racks_owed;  // staged replies consumed here
    std::vector<StageBuf> stage_pool;  // free bounce buffers, ready to reuse
    std::vector<StageBuf> reply_pool;  // free reply buffers, ready to reuse
    // Staged replies sent to this peer, pinned until its rack returns.
    std::unordered_map<std::uint64_t, StageBuf> reply_out;
  };

  // Wire-address translation (gex/segment.hpp): every remote/staged
  // address leaving this rank is packed to (segment id, offset) at record
  // encode, and every address arriving is resolved against this rank's own
  // mapping at decode — no wire byte depends on the peer's virtual-address
  // layout. Both abort on addresses outside the registered segments.
  WireAddr wire_enc(std::uint64_t addr) const;
  std::uint64_t wire_dec(WireAddr wa) const;

  Peer& peer(int target) {
    assert(target >= 0 &&
           static_cast<std::size_t>(target) < peers_.size() &&
           "peer rank outside the configured job size");
    return *peers_[static_cast<std::size_t>(target)];
  }
  // The operating window for one peer: pinned, or the controller's current
  // value. Every bound in the protocol (credits, queue cap, both staging
  // pools, engine back-pressure) derives from this so the state machine
  // follows an adaptive window as it moves.
  std::uint32_t window_now(const Peer& p) const {
    return adaptive_ ? p.ctrl.window() : window_;
  }
  // Consumer identity: poll_requests (and the constructor) stamp the
  // calling thread's marker; everything checking on_consumer() branches
  // between consumer behavior (may poll, may spin-with-poll) and helper
  // behavior (never polls, parks instead of spinning). A stale marker
  // only *softens* a helper's behavior — the true consumer re-stamps on
  // its next poll, so it never wrongly classifies itself as a helper
  // across a blocking spin.
  static const void* thread_marker() {
    static thread_local char tm;
    return &tm;
  }
  bool on_consumer() const {
    return consumer_tm_.load(std::memory_order_relaxed) == thread_marker();
  }
  // Null .p when the job is failing and the heap is exhausted (the blocks
  // may be pinned by a dead peer's unacked requests) — the caller cancels.
  StageBuf acquire_stage(Peer& p, std::size_t bytes);
  void recycle_stage(Peer& p, StageBuf buf);
  // Reply-staging twin of acquire_stage, but *non-blocking*: null .p when
  // the per-peer staged-reply bound is reached or the heap has no block
  // right now — the caller falls back to the rendezvous REPLY path instead
  // of stalling the target's poll loop.
  StageBuf acquire_reply_stage(Peer& p, std::size_t bytes);
  // Initiator's rack arrived: unpin the staged reply buffer `cookie` and
  // recycle it into the peer's reply pool (freed if the pool is at its
  // bound — the window may have shrunk since the buffer went out).
  void recycle_reply(Peer& p, std::uint64_t cookie);
  void cancel_sent(Peer& p, std::uint64_t cookie);
  std::uint64_t new_pending(int target, Done done,
                            std::vector<LocalFrag> scatter);
  // Both ack namespaces owed to one target, drained together for embedding
  // in an outgoing record (request acks retire credits at the receiver;
  // reply acks unpin staged reply buffers).
  struct OwedAcks {
    std::vector<std::uint64_t> acks;   // request cookies
    std::vector<std::uint64_t> racks;  // staged-reply cookies
  };
  OwedAcks take_acks(int target);
  // Locked appends to the owed lists: handlers (consumer) record debts
  // while a helper's concurrent send to the same peer may be draining
  // them through take_acks.
  void owe_ack(int src, std::uint64_t cookie) {
    Peer& p = peer(src);
    arch::SpinGuard g(p.mu);
    p.acks_owed.push_back(cookie);
  }
  void owe_rack(int src, std::uint64_t cookie) {
    Peer& p = peer(src);
    arch::SpinGuard g(p.mu);
    p.racks_owed.push_back(cookie);
  }
  // Records the wire-send time of `cookie` for adaptive RTT sampling
  // (no-op when the window is pinned).
  void note_wire_send(std::uint64_t cookie);
  // CAS on p.outstanding against the current window; true means the
  // caller owns one credit and must send (or release it via cancel_sent /
  // requeue_put). Fails while anything is parked in the sendq — queued
  // requests go first, and only flush_sendq (consumer) drains those.
  bool try_claim_credit(Peer& p);
  // Claims one credit ignoring the sendq (flush_sendq draining its own
  // queue). Shared CAS loop with try_claim_credit.
  bool claim_outstanding(Peer& p);
  // Helper-side staged-put fallback: the shared heap had no block and a
  // helper must not poll-spin for one. Releases the claimed credit and
  // parks the request (with an owned payload copy out of the staging
  // source) for the consumer's flush_sendq to retry.
  void requeue_put(Peer& p, std::uint64_t cookie, const Frag& dst,
                   const void* src);
  void enqueue(Peer& p, QueuedReq q);
  // Sends queued requests while credits allow; returns actions performed.
  int flush_sendq(Peer& p);

  // Wire writers. Each drains the target's owed acks into the record.
  void send_put(int target, std::uint64_t cookie, const Frag& dst,
                const void* src);
  void send_get(int target, std::uint64_t cookie, const Frag& src);
  void send_put_frag(int target, std::uint64_t cookie,
                     const std::vector<Frag>& dsts, const LocalFrag* srcs,
                     std::size_t nsrcs, std::size_t total);
  void send_get_frag(int target, std::uint64_t cookie,
                     const std::vector<Frag>& srcs);

  AmEngine* am_;
  bool adaptive_;          // window policy: controller vs pinned
  std::uint32_t window_;   // pinned window / adaptive starting window
  std::uint32_t max_window_;  // hard ceiling (== window_ when pinned)
  double envelope_;        // controller RTT envelope factor
  std::atomic<const void*> consumer_tm_{nullptr};
  // Guards pending_ and next_cookie_ (injected sends create entries while
  // the consumer's completion loop extracts them). Never held across a
  // send, a spin, or a user callback; leaf in the lock order (taken under
  // an XferEngine channel lock, never with a Peer::mu held).
  mutable arch::Spinlock pending_mu_;
  std::uint64_t next_cookie_ = 1;
  std::unordered_map<std::uint64_t, Pending> pending_;  // initiator side
  // One entry per rank, created up front (indexed by rank id): no
  // container mutation after construction, so helper issue passes hold
  // stable references without a container lock.
  std::vector<std::unique_ptr<Peer>> peers_;
  std::vector<QueuedReply> replies_;   // target side, deferred to poll()
  std::vector<std::uint64_t> completed_;  // acked/replied, done not yet run
  Stats stats_;
};

}  // namespace gex
