// oldupcxx: a UPC++ v0.1-style API layer (paper §V-A, Fig 9).
//
// The paper compares symPACK built on the *predecessor* UPC++ (Zheng et al.
// 2014) against the v1.0 redesign, finding near-identical performance — the
// point being that the richer futures model costs nothing. To reproduce that
// experiment we implement the v0.1 idioms over the same runtime:
//
//   * `event` — readiness-only completion object with *explicit lifetime
//     management* (the burden §V-A calls out). Events count registered
//     operations and are waited on or tested; they carry no values and
//     cannot be chained.
//   * `async(rank, &event)(fn, args...)` — remote task launch; the callable
//     cannot return a value to the initiator (asyncs "could not" — §V-A).
//   * `allocate<T>(rank, n)` — *blocking* remote allocation (the v0.1 DHT
//     insert needs this; §V-A notes it hurts latency).
//   * `async_copy(src, dst, n, &event)` — one-sided copy with event
//     completion; no operation chaining, no completion handlers.
//   * `async_wait()` — drain all outstanding implicit-event operations.
#pragma once

#include <cassert>
#include <cstdint>

#include "upcxx/upcxx.hpp"

namespace oldupcxx {

using upcxx::global_ptr;

// Readiness-only completion object. Unlike v1.0 futures, the user owns the
// event and must keep it alive until every registered operation signals.
class event {
 public:
  event() = default;
  event(const event&) = delete;
  event& operator=(const event&) = delete;

  ~event() {
    assert(pending_ == 0 &&
           "event destroyed with operations outstanding (v0.1 lifetime bug)");
  }

  bool isdone() const { return pending_ == 0; }

  // Spin user progress until every registered operation has signaled.
  void wait() {
    while (pending_ > 0) upcxx::progress();
  }

  bool test() {
    upcxx::progress();
    return pending_ == 0;
  }

  // Internal: operation registration/signaling.
  void incref() { ++pending_; }
  void decref() {
    assert(pending_ > 0);
    --pending_;
  }

 private:
  int pending_ = 0;
};

namespace detail {

// Signals `e` on the initiating rank once a remote ack arrives. Events are
// persona-local raw pointers, valid because v0.1 requires the user to keep
// the event alive (asserted in ~event).
inline void signal_local(event* e) {
  if (e) e->decref();
}

}  // namespace detail

// The default "implicit" event tracking fire-and-forget asyncs, drained by
// async_wait() — v0.1 programs often relied on this global sink.
event& system_event();

// Launcher object: async(rank, &e)(fn, args...).
class async_launcher {
 public:
  async_launcher(upcxx::intrank_t target, event* done)
      : target_(target), done_(done) {}

  template <typename F, typename... Args>
  void operator()(F fn, Args&&... args) {
    static_assert(std::is_trivially_copyable_v<F>,
                  "v0.1 async callables must be shippable");
    event* e = done_ ? done_ : &system_event();
    e->incref();
    // v0.1 asyncs cannot return values; completion is ack-only.
    upcxx::rpc(target_, std::move(fn), std::forward<Args>(args)...)
        .then([e] { detail::signal_local(e); });
  }

 private:
  upcxx::intrank_t target_;
  event* done_;
};

inline async_launcher async(upcxx::intrank_t target, event* done = nullptr) {
  return async_launcher(target, done);
}

// Drains every operation registered on the implicit system event.
inline void async_wait() { system_event().wait(); }

// Blocking remote allocation (v0.1 semantics; §V-A: "incurs both a blocking
// remote allocation and a blocking RMA").
template <typename T>
global_ptr<T> allocate(upcxx::intrank_t rank, std::size_t count) {
  if (rank == upcxx::rank_me()) return upcxx::allocate<T>(count);
  return upcxx::rpc(rank,
                    [](std::uint64_t n) {
                      return upcxx::allocate<T>(static_cast<std::size_t>(n));
                    },
                    static_cast<std::uint64_t>(count))
      .wait();
}

template <typename T>
void deallocate(global_ptr<T> g) {
  if (g.is_null()) return;
  if (g.where() == upcxx::rank_me()) {
    upcxx::deallocate(g);
    return;
  }
  upcxx::rpc(g.where(), [](global_ptr<T> p) { upcxx::deallocate(p); }, g)
      .wait();
}

// One-sided copy between any combination of local/remote global pointers,
// completion signaled on `done` (or the system event).
template <typename T>
void async_copy(global_ptr<T> src, global_ptr<T> dst, std::size_t count,
                event* done = nullptr) {
  event* e = done ? done : &system_event();
  e->incref();
  // Data motion on the shared arena is a memcpy either way; completion goes
  // through the progress engine like any v1.0 RMA.
  upcxx::rput(src.local(), dst, count,
              upcxx::operation_cx::as_lpc([e] { detail::signal_local(e); }));
}

// Blocking copy (v0.1 upcxx::copy).
template <typename T>
void copy(global_ptr<T> src, global_ptr<T> dst, std::size_t count) {
  event e;
  async_copy(src, dst, count, &e);
  e.wait();
}

// v0.1 barrier.
inline void barrier() { upcxx::barrier(); }

}  // namespace oldupcxx
