#include "oldupcxx/oldupcxx.hpp"

namespace oldupcxx {

event& system_event() {
  // One implicit sink per rank, lazily created and intentionally leaked at
  // thread exit only if operations never drained (the ~event assert guards
  // misuse in tests via explicit async_wait calls).
  thread_local event e;
  return e;
}

}  // namespace oldupcxx
