// Ablation: communication/computation overlap through the asynchronous
// data-motion engine (the paper's core §II-§III claim, made measurable).
//
// Rank 0 repeatedly moves a large block to rank 1 while running a fixed
// compute kernel, two ways:
//
//   blocking — issue the rput, wait for completion, then compute: the
//              initiator drains the transfer inside wait()'s progress
//              loop, so transfer and compute serialize.
//   overlap  — the master persona migrates to a progress thread that
//              drains the XferEngine; the primordial thread requests the
//              rput via an LPC and computes while the transfer proceeds.
//
// Two wire modes:
//   real     — the transfer cost is the memcpy itself; overlap needs a
//              second core for the progress thread (enforced only when the
//              host has >= 4 hardware threads — 2 ranks + the progress
//              thread — and BENCH_QUICK is unset);
//   sim cap  — UPCXX_SIM_BW_GBPS gates completion behind a virtual wire
//              clock; overlap hides wall-clock wire time and wins even on
//              one core, so this mode carries the enforced shape check.
//
// Effective throughput = work done (bytes moved + compute) / elapsed. With
// the compute kernel calibrated to roughly one transfer time, ideal
// overlap halves the elapsed time; the check requires >= 1.5x.
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "arch/timer.hpp"
#include "bench_util.hpp"
#include "upcxx/upcxx.hpp"

namespace {

// Compute kernel: `units` dependent flop chains, opaque to the optimizer.
double compute(long units) {
  double acc = 0.0;
  for (long k = 0; k < units; ++k)
    acc += static_cast<double>(k % 7) * 1e-9 + acc * 1e-16;
  return acc;
}

double g_sink = 0;  // defeat dead-code elimination

struct Result {
  double blocking_s = 0;
  double overlap_s = 0;
  long compute_units = 0;
};
Result g_result;

// Runs both variants inside one 2-rank SPMD region; results in g_result.
void run_variants(int iters, std::size_t bytes) {
  const int me = upcxx::rank_me();
  auto seg = upcxx::allocate<char>(bytes);
  upcxx::dist_object<upcxx::global_ptr<char>> dir(seg);
  auto peer = dir.fetch(1 - me).wait();
  static std::vector<char> src;
  if (me == 0) src.assign(bytes, 'o');
  upcxx::barrier();

  if (me == 0) {
    // Calibrate: one blocking rput gives the per-transfer time (memcpy or
    // virtual wire, whichever gates); scale the compute kernel to match.
    upcxx::rput(src.data(), peer, bytes).wait();  // warm
    double t0 = arch::now_s();
    upcxx::rput(src.data(), peer, bytes).wait();
    const double t_xfer = arch::now_s() - t0;
    constexpr long kProbe = 1 << 20;
    t0 = arch::now_s();
    g_sink += compute(kProbe);
    const double t_probe = arch::now_s() - t0;
    const long units = std::max<long>(
        1, static_cast<long>(kProbe * (t_xfer / t_probe)));
    g_result.compute_units = units;

    // ---- blocking variant ---------------------------------------------
    t0 = arch::now_s();
    for (int it = 0; it < iters; ++it) {
      upcxx::rput(src.data(), peer, bytes).wait();
      g_sink += compute(units);
    }
    g_result.blocking_s = arch::now_s() - t0;
  }
  upcxx::barrier();

  // ---- overlap variant ------------------------------------------------
  if (me == 0) {
    // upcxx::progress_thread packages the whole idiom this bench used to
    // spell out by hand: the master persona migrates to a spawned thread
    // that loops on progress() — spinning hard only while the data-motion
    // engine has chunks to move, yielding otherwise so an oversubscribed
    // host gives the core to the compute thread — and stop() hands the
    // master back.
    upcxx::progress_thread pt;

    const double t0 = arch::now_s();
    for (int it = 0; it < iters; ++it) {
      // Ask the progress thread to inject; compute while it drains.
      auto done = pt.lpc([peer, bytes] {
        return upcxx::rput(src.data(), peer, bytes);
      });
      g_sink += compute(g_result.compute_units);
      done.wait();
    }
    g_result.overlap_s = arch::now_s() - t0;
    pt.stop();
  }
  upcxx::barrier();
  upcxx::deallocate(seg);
}

// One wire mode end to end; returns the overlap speedup.
double run_mode(const char* label, gex::Config cfg, int iters,
                std::size_t bytes, benchutil::JsonReport& json) {
  cfg.ranks = 2;
  cfg.segment_bytes = std::max(cfg.segment_bytes, 2 * bytes);
  cfg.rma_async_min = 64 << 10;
  g_result = Result{};
  const int fails =
      upcxx::run(cfg, [iters, bytes] { run_variants(iters, bytes); });
  if (fails) std::exit(2);
  const double ratio = g_result.blocking_s / g_result.overlap_s;
  const double vol_mb = static_cast<double>(bytes) * iters / (1 << 20);
  std::printf("%s\n", label);
  std::printf("  %-32s %8.3f s   %8.1f MB/s effective\n",
              "blocking issue (xfer; compute)", g_result.blocking_s,
              vol_mb / g_result.blocking_s);
  std::printf("  %-32s %8.3f s   %8.1f MB/s effective\n",
              "overlapped (progress thread)", g_result.overlap_s,
              vol_mb / g_result.overlap_s);
  std::printf("  overlap speedup: %.2fx (%ld compute units)\n\n", ratio,
              g_result.compute_units);
  std::string key(label[0] == 'r' ? "real" : "sim");
  json.metric(key + "_blocking_s", g_result.blocking_s);
  json.metric(key + "_overlap_s", g_result.overlap_s);
  json.metric(key + "_speedup", ratio);
  return ratio;
}

}  // namespace

int main() {
  const int iters = benchutil::reps(12, 3);
  const auto bytes = static_cast<std::size_t>(
      (16 << 20) * benchutil::work_scale());
  const bool quick = benchutil::reps(2, 1) == 1;
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf(
      "ABL — comm/compute overlap via the async data-motion engine\n"
      "2 ranks, %zu MB per transfer, %d transfers per variant, %u hardware "
      "threads;\ncompute kernel calibrated to ~1 transfer time\n\n",
      bytes >> 20, iters, hw);

  benchutil::JsonReport json("abl_overlap");
  gex::Config real_cfg = gex::Config::from_env();
  real_cfg.sim_bw_gbps = 0;
  const double real_ratio =
      run_mode("real wire (memcpy moves on the progress thread)", real_cfg,
               iters, bytes, json);

  gex::Config sim_cfg = gex::Config::from_env();
  sim_cfg.sim_bw_gbps = 1.0;
  const double sim_ratio = run_mode(
      "simulated wire cap (1 GB/s: completion gated by the virtual clock)",
      sim_cfg, iters, bytes, json);
  json.write();

  benchutil::ShapeChecks checks;
  if (quick) {
    checks.note("BENCH_QUICK: speedups real " + std::to_string(real_ratio) +
                "x / sim " + std::to_string(sim_ratio) +
                "x (thresholds not enforced on smoke hosts)");
  } else {
    checks.expect(sim_ratio >= 1.5,
                  "overlapped issue achieves >= 1.5x effective throughput "
                  "vs blocking issue (simulated wire)");
    if (hw >= 4) {
      checks.expect(real_ratio >= 1.5,
                    "overlapped issue achieves >= 1.5x effective throughput "
                    "vs blocking issue (real wire, dedicated core)");
    } else {
      checks.note("host has <4 hardware threads: real-wire overlap ratio " +
                  std::to_string(real_ratio) + "x reported, not enforced");
    }
  }
  return checks.summary("abl_overlap");
}
