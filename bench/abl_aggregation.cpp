// Ablation A6 (message layer v2 / DESIGN.md): per-target RPC aggregation
// on/off × message size.
//
// Rank 0 floods rank 1 with fire-and-forget RPCs of a given payload size;
// the run ends when rank 1 has executed all of them, so the measured rate is
// the end-to-end fine-grained messaging rate (injection + wire + dispatch).
// With aggregation on, back-to-back sends pack into multi-message frames:
// one ring transaction and one receive-side staging allocation per
// ~UPCXX_AGG_MAX_MSGS messages instead of one each. The paper's DHT and
// eadd workloads (§IV) are exactly this traffic shape, which is why the
// aggregated path is the default.
//
// Expected shape: small payloads gain the most (per-message overhead
// dominates); the gain tapers as payloads grow and bandwidth takes over.
// The headline check: >= 2x message rate at 8-byte payloads.
#include <atomic>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "arch/timer.hpp"
#include "bench_util.hpp"
#include "upcxx/upcxx.hpp"

namespace {

std::atomic<long> g_bytes{0};

double flood_rate_mmsgs(bool agg_on, std::size_t sz, int iters) {
  gex::Config cfg = gex::Config::from_env();
  cfg.ranks = 2;
  cfg.agg_enabled = agg_on;
  cfg.ring_bytes = 1 << 20;
  static double rate;  // Mmsg/s, written by rank 1
  int fails = upcxx::run(cfg, [sz, iters] {
    g_bytes = 0;
    upcxx::barrier();
    if (upcxx::rank_me() == 0) {
      std::vector<double> payload(sz / sizeof(double));
      for (int i = 0; i < iters; ++i) {
        if (sz <= sizeof(std::uint64_t)) {
          // The fine-grained idiom the paper's DHT/eadd workloads hit: a
          // scalar update shipped as a plain RPC argument.
          upcxx::rpc_ff(1,
                        [](std::uint64_t v) {
                          g_bytes.fetch_add(static_cast<long>(v),
                                            std::memory_order_relaxed);
                        },
                        std::uint64_t{8});
        } else {
          upcxx::rpc_ff(1,
                        [](upcxx::view<double> v) {
                          g_bytes.fetch_add(
                              static_cast<long>(v.size() * sizeof(double)),
                              std::memory_order_relaxed);
                        },
                        upcxx::make_view(payload.data(),
                                         payload.data() + payload.size()));
        }
        // Sparse progress keeps batches large; the buffer caps
        // (UPCXX_AGG_MAX_MSGS) bound the flush size either way.
        if (!(i % 256)) upcxx::progress();
      }
      // Final flush + drain until rank 1 confirms via the barrier below.
    } else {
      const long expect = static_cast<long>(iters) * static_cast<long>(sz);
      const double t0 = arch::now_s();
      // Yield when a progress round moved nothing: on an oversubscribed
      // host the sender needs the core; spinning an empty inbox for the
      // rest of the timeslice would measure the scheduler, not the
      // message layer.
      long prev = -1;
      for (;;) {
        const long cur = g_bytes.load(std::memory_order_relaxed);
        if (cur >= expect) break;
        upcxx::progress();
        if (cur == prev) std::this_thread::yield();
        prev = cur;
      }
      rate = iters / (arch::now_s() - t0) / 1e6;
    }
    upcxx::barrier();
  });
  if (fails) std::exit(2);
  return rate;
}

// Best of `reps` runs: scheduling noise on oversubscribed hosts hits the
// slow runs, not the fast ones.
double best_rate(bool agg_on, std::size_t sz, int iters, int reps) {
  double best = 0;
  for (int r = 0; r < reps; ++r)
    best = std::max(best, flood_rate_mmsgs(agg_on, sz, iters));
  return best;
}

}  // namespace

int main() {
  std::printf(
      "Ablation — per-target RPC aggregation (rpc_ff flood, 2 ranks)\n\n");
  const std::vector<std::size_t> sizes{8, 64, 512, 4096};
  benchutil::JsonReport json("abl_aggregation");

  // results[mode][size] = Mmsg/s; mode 0 = off, 1 = on.
  std::vector<std::vector<double>> rate(2);
  for (int mode = 0; mode < 2; ++mode) {
    for (std::size_t sz : sizes) {
      const int iters = static_cast<int>(
          benchutil::reps(static_cast<int>((8u << 20) / (sz + 64)), 4000));
      rate[mode].push_back(
          best_rate(mode == 1, sz, iters, benchutil::reps(3, 2)));
    }
  }

  std::printf("%10s %14s %14s %10s\n", "payload", "agg off", "agg on",
              "speedup");
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const double off = rate[0][i], on = rate[1][i];
    std::printf("%10s %11.3f Mm/s %11.3f Mm/s %9.2fx\n",
                benchutil::human_size(sizes[i]).c_str(), off, on,
                off > 0 ? on / off : 0.0);
    const std::string tag = benchutil::human_size(sizes[i]);
    json.metric("agg_off_" + tag + "_mmsgs", off);
    json.metric("agg_on_" + tag + "_mmsgs", on);
  }

  benchutil::ShapeChecks checks;
  std::printf(
      "\nExpected shape: aggregation wins big for fine-grained messages and "
      "tapers as payloads grow.\n");
  checks.expect(rate[1][0] >= rate[0][0] * 2.0,
                "aggregated 8B RPC throughput is >= 2x the unaggregated "
                "path");
  checks.expect(rate[1][1] >= rate[0][1],
                "aggregation does not hurt 64B messages");
  json.write();
  return checks.summary("abl_aggregation");
}
