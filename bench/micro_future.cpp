// Micro-benchmark A3: future/promise machinery costs (google-benchmark).
//
// The paper's premise is that futures are cheap enough to wrap every
// communication operation. These micros quantify the costs: ready-future
// creation, .then chaining (ready and deferred), when_all conjoining,
// promise counting, and progress-engine LPC dispatch.
#include <benchmark/benchmark.h>

#include "upcxx/upcxx.hpp"

namespace {

void BM_MakeFuture(benchmark::State& state) {
  for (auto _ : state) {
    auto f = upcxx::make_future(42);
    benchmark::DoNotOptimize(f.result());
  }
}
BENCHMARK(BM_MakeFuture);

void BM_ThenOnReady(benchmark::State& state) {
  for (auto _ : state) {
    auto f = upcxx::make_future(1).then([](int v) { return v + 1; });
    benchmark::DoNotOptimize(f.result());
  }
}
BENCHMARK(BM_ThenOnReady);

void BM_ThenChainDeferred(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    upcxx::promise<int> pr;
    upcxx::future<int> f = pr.get_future();
    for (int i = 0; i < depth; ++i)
      f = f.then([](int v) { return v + 1; });
    pr.fulfill_result(0);
    benchmark::DoNotOptimize(f.result());
  }
  state.SetItemsProcessed(state.iterations() * depth);
}
BENCHMARK(BM_ThenChainDeferred)->Arg(1)->Arg(8)->Arg(64)->Arg(512);

void BM_WhenAllWidth(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  for (auto _ : state) {
    std::vector<upcxx::promise<>> prs(width);
    upcxx::future<> f = upcxx::make_future();
    for (auto& p : prs) f = upcxx::when_all(f, p.get_future());
    for (auto& p : prs) p.fulfill_anonymous(1);
    benchmark::DoNotOptimize(f.is_ready());
  }
  state.SetItemsProcessed(state.iterations() * width);
}
BENCHMARK(BM_WhenAllWidth)->Arg(2)->Arg(16)->Arg(128);

void BM_PromiseCounting(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    upcxx::promise<> p;
    p.require_anonymous(n);
    auto f = p.finalize();
    for (int i = 0; i < n; ++i) p.fulfill_anonymous(1);
    benchmark::DoNotOptimize(f.is_ready());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PromiseCounting)->Arg(16)->Arg(256);

void BM_LpcRoundTrip(benchmark::State& state) {
  for (auto _ : state) {
    upcxx::promise<> p;
    p.require_anonymous(1);
    upcxx::detail::push_compq([p]() mutable { p.fulfill_anonymous(1); });
    p.finalize().wait();
  }
}
BENCHMARK(BM_LpcRoundTrip);

void BM_SelfRpc(benchmark::State& state) {
  for (auto _ : state) {
    upcxx::rpc(0, [](int v) { return v + 1; }, 1).wait();
  }
}
BENCHMARK(BM_SelfRpc);

}  // namespace

// Futures require a persona; run the benchmark driver inside a 1-rank SPMD
// region.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  gex::Config cfg = gex::Config::from_env();
  cfg.ranks = 1;
  return upcxx::run(cfg, [] { benchmark::RunSpecifiedBenchmarks(); });
}
