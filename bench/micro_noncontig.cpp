// Micro — non-contiguous RMA (paper §II: "UPC++ also supports
// non-contiguous RMA transfers (vector, indexed and strided), enabling
// programmers to conveniently express more complex patterns of data
// movement, such as those required with the use of multidimensional
// arrays").
//
// Measures the cost of moving a 2-D submatrix (column panel of a
// row-major matrix) three ways:
//   1. rput_strided — one call, the library walks the shape;
//   2. rput_irregular — one fragment per row;
//   3. manual pack + contiguous rput + remote-side scatter via RPC — what
//      an application does without non-contiguous support.
// Plus a fragment-size sweep showing the per-fragment overhead that makes
// tiny fragments expensive (why the paper calls these *productivity*
// features: below a crossover, packing wins).
#include <cstdio>
#include <cstring>
#include <vector>

#include "arch/timer.hpp"
#include "bench_util.hpp"
#include "upcxx/upcxx.hpp"

namespace {

constexpr std::size_t kRows = 256, kCols = 256;  // full matrix (doubles)
constexpr std::size_t kPanel = 32;               // panel width to transfer

double bench_one(const std::function<void()>& op, int reps) {
  op();  // warm
  const double t0 = arch::now_s();
  for (int i = 0; i < reps; ++i) op();
  return (arch::now_s() - t0) / reps * 1e6;  // us/op
}

}  // namespace

int main() {
  std::printf("Micro — non-contiguous RMA vs manual packing (2 ranks)\n\n");
  benchutil::ShapeChecks checks;
  const int reps = benchutil::reps(2000, 50);

  upcxx::run(2, [&] {
    const int me = upcxx::rank_me();
    static upcxx::global_ptr<double> remote_mat;
    auto mine = upcxx::new_array<double>(kRows * kCols);
    if (me == 1)
      upcxx::rpc(0, [](upcxx::global_ptr<double> p) { remote_mat = p; },
                 mine)
          .wait();
    upcxx::barrier();

    if (me == 0) {
      std::vector<double> local(kRows * kCols, 1.5);
      const std::size_t bytes = kRows * kPanel * sizeof(double);

      // 1. strided: one call for the whole panel.
      const double strided_us = bench_one(
          [&] {
            upcxx::rput_strided<2>(
                local.data(),
                {static_cast<std::ptrdiff_t>(kCols * sizeof(double)),
                 static_cast<std::ptrdiff_t>(sizeof(double))},
                remote_mat,
                {static_cast<std::ptrdiff_t>(kCols * sizeof(double)),
                 static_cast<std::ptrdiff_t>(sizeof(double))},
                {kRows, kPanel})
                .wait();
          },
          reps);

      // 2. irregular: one fragment per row.
      std::vector<upcxx::src_fragment<double>> srcs(kRows);
      std::vector<upcxx::dst_fragment<double>> dsts(kRows);
      const double irregular_us = bench_one(
          [&] {
            for (std::size_t r = 0; r < kRows; ++r) {
              srcs[r] = {local.data() + r * kCols, kPanel};
              dsts[r] = {remote_mat + r * kCols, kPanel};
            }
            upcxx::rput_irregular(srcs, dsts).wait();
          },
          reps);

      // 3. manual: pack into a staging buffer, one contiguous rput into a
      // remote staging area, RPC scatters at the target.
      static upcxx::global_ptr<double> stage;
      stage = upcxx::rpc(1, [] {
                return upcxx::allocate<double>(kRows * kPanel);
              }).wait();
      std::vector<double> pack(kRows * kPanel);
      const double manual_us = bench_one(
          [&] {
            for (std::size_t r = 0; r < kRows; ++r)
              std::memcpy(pack.data() + r * kPanel,
                          local.data() + r * kCols, kPanel * sizeof(double));
            upcxx::rput(pack.data(), stage, kRows * kPanel).wait();
            upcxx::rpc(1, [](upcxx::global_ptr<double> s,
                             upcxx::global_ptr<double> m) {
              const double* in = s.local();
              double* out = m.local();
              for (std::size_t r = 0; r < kRows; ++r)
                std::memcpy(out + r * kCols, in + r * kPanel,
                            kPanel * sizeof(double));
            }, stage, remote_mat).wait();
          },
          reps);

      std::printf("-- %zux%zu panel of a %zux%zu row-major matrix (%s) --\n",
                  kRows, kPanel, kRows, kCols,
                  benchutil::human_size(bytes).c_str());
      std::printf("  %-34s %8.2f us  (%6.2f GB/s)\n", "rput_strided",
                  strided_us, bytes / strided_us / 1e3);
      std::printf("  %-34s %8.2f us  (%6.2f GB/s)\n",
                  "rput_irregular (row fragments)", irregular_us,
                  bytes / irregular_us / 1e3);
      std::printf("  %-34s %8.2f us  (%6.2f GB/s)\n",
                  "manual pack + rput + RPC scatter", manual_us,
                  bytes / manual_us / 1e3);
      checks.expect(strided_us < manual_us,
                    "one-call strided beats pack+put+scatter (no staging "
                    "copy, no target CPU)");
      checks.expect(irregular_us < manual_us * 1.5,
                    "irregular within 1.5x of manual (no staging, but "
                    "per-fragment bookkeeping)");

      // Fragment-size sweep: fixed volume, varying fragment count.
      std::printf("\n-- fragment-size sweep, fixed 256KB volume --\n");
      std::printf("%12s %12s %14s\n", "frag bytes", "fragments", "us/op");
      const std::size_t total = kRows * kCols;  // doubles
      double us_small = 0, us_big = 0;
      for (std::size_t frag = 8; frag <= total; frag *= 16) {
        const std::size_t nfrag = total / frag;
        std::vector<upcxx::src_fragment<double>> s(nfrag);
        std::vector<upcxx::dst_fragment<double>> d(nfrag);
        const double us = bench_one(
            [&] {
              for (std::size_t i = 0; i < nfrag; ++i) {
                s[i] = {local.data() + i * frag, frag};
                d[i] = {remote_mat + i * frag, frag};
              }
              upcxx::rput_irregular(s, d).wait();
            },
            std::max(reps / 4, 10));
        std::printf("%12zu %12zu %12.2fus\n", frag * sizeof(double), nfrag,
                    us);
        if (frag == 8) us_small = us;
        us_big = us;
      }
      checks.expect(us_small > us_big * 2.0,
                    "tiny fragments pay per-fragment overhead (>=2x slower "
                    "than few large fragments at fixed volume)");
      upcxx::rpc(1, [](upcxx::global_ptr<double> s) {
        upcxx::deallocate(s);
      }, stage).wait();
    }
    upcxx::barrier();
    upcxx::delete_array(mine, kRows * kCols);
    upcxx::barrier();
  });

  return checks.summary("micro_noncontig");
}
