// Micro-benchmark A4: serialization throughput (google-benchmark).
//
// RPC argument marshalling is on the critical path of every remote call;
// these micros measure the trait-dispatched archive for the common cases:
// trivially-copyable bulk (memcpy-bound), strings, element-wise containers,
// and the zero-copy view path.
#include <benchmark/benchmark.h>

#include <string>
#include <unordered_map>
#include <vector>

#include "upcxx/serialization.hpp"

namespace {

using upcxx::detail::Reader;
using upcxx::detail::SizeArchive;
using upcxx::detail::WriteArchive;

template <typename T>
std::size_t wire_size(const T& v) {
  SizeArchive sa;
  upcxx::serialization<T>::serialize(sa, v);
  return sa.size();
}

template <typename T>
void roundtrip(const T& v, std::vector<std::byte>& buf) {
  buf.resize(wire_size(v));
  WriteArchive wa(buf.data());
  upcxx::serialization<T>::serialize(wa, v);
  Reader r(buf.data(), buf.size());
  benchmark::DoNotOptimize(upcxx::serialization<T>::deserialize(r));
}

void BM_TrivialVector(benchmark::State& state) {
  std::vector<double> v(state.range(0), 1.5);
  std::vector<std::byte> buf;
  for (auto _ : state) roundtrip(v, buf);
  state.SetBytesProcessed(state.iterations() * v.size() * sizeof(double));
}
BENCHMARK(BM_TrivialVector)->Arg(16)->Arg(1024)->Arg(65536);

void BM_String(benchmark::State& state) {
  std::string s(state.range(0), 'x');
  std::vector<std::byte> buf;
  for (auto _ : state) roundtrip(s, buf);
  state.SetBytesProcessed(state.iterations() * s.size());
}
BENCHMARK(BM_String)->Arg(16)->Arg(4096);

void BM_VectorOfStrings(benchmark::State& state) {
  std::vector<std::string> v(state.range(0), std::string(32, 'k'));
  std::vector<std::byte> buf;
  for (auto _ : state) roundtrip(v, buf);
  state.SetItemsProcessed(state.iterations() * v.size());
}
BENCHMARK(BM_VectorOfStrings)->Arg(16)->Arg(512);

void BM_UnorderedMap(benchmark::State& state) {
  std::unordered_map<std::uint64_t, std::uint64_t> m;
  for (int i = 0; i < state.range(0); ++i) m[i] = i * 3;
  std::vector<std::byte> buf;
  for (auto _ : state) roundtrip(m, buf);
  state.SetItemsProcessed(state.iterations() * m.size());
}
BENCHMARK(BM_UnorderedMap)->Arg(64)->Arg(1024);

void BM_ViewSerializeOnly(benchmark::State& state) {
  // Sender side of the extend-add path: view over packed entries.
  std::vector<double> v(state.range(0), 2.0);
  auto view = upcxx::make_view(v.data(), v.data() + v.size());
  std::vector<std::byte> buf(wire_size(view));
  for (auto _ : state) {
    WriteArchive wa(buf.data());
    upcxx::serialization<decltype(view)>::serialize(wa, view);
    benchmark::DoNotOptimize(wa.written());
  }
  state.SetBytesProcessed(state.iterations() * v.size() * sizeof(double));
}
BENCHMARK(BM_ViewSerializeOnly)->Arg(1024)->Arg(65536);

void BM_ViewDeserializeZeroCopy(benchmark::State& state) {
  // Target side: deserialization must be O(1) regardless of size.
  std::vector<double> v(state.range(0), 2.0);
  auto view = upcxx::make_view(v.data(), v.data() + v.size());
  std::vector<std::byte> buf(wire_size(view));
  WriteArchive wa(buf.data());
  upcxx::serialization<decltype(view)>::serialize(wa, view);
  for (auto _ : state) {
    Reader r(buf.data(), buf.size());
    auto out =
        upcxx::serialization<decltype(view)>::deserialize(r);
    benchmark::DoNotOptimize(out.begin());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ViewDeserializeZeroCopy)->Arg(1024)->Arg(1048576);

}  // namespace

BENCHMARK_MAIN();
