// Fig 9 reproduction: symPACK strong scaling, UPC++ v0.1 vs v1.0.
//
// Paper setup (§IV-D-4): symPACK factorizing Flan_1565, originally written
// against UPC++ v0.1 (asyncs + events), ported to v1.0 (RPCs + futures);
// mean of 10 runs per point. Paper result: the two curves are nearly
// identical — average difference 0.7% across job sizes, at most 7.2% in
// favor of v1.0 — i.e. the redesigned asynchrony machinery adds no
// measurable overhead.
//
// Substitution (DESIGN.md): Flan_1565 is modeled by the synthetic
// nested-dissection tree at a scale where communication is a visible
// fraction of the multifrontal factorization.
#include <cmath>
#include <cstdio>
#include <map>
#include <vector>

#include "apps/sympack/sympack.hpp"
#include "bench_util.hpp"
#include "upcxx/upcxx.hpp"

int main() {
  sparse::TreeParams params;
  params.levels = 7;
  params.n_vertices = 1564794;  // Flan_1565 dimension
  params.sep_coeff = benchutil::work_scale() < 1.0 ? 0.08 : 0.15;
  params.min_sep = 8;
  params.max_front = benchutil::work_scale() < 1.0 ? 160 : 256;
  params.seed = 1565;

  const int runs = benchutil::reps(10, 2);
  auto ranks = benchutil::rank_sweep(16);

  std::printf(
      "Fig 9 — symPACK (mini) strong scaling: UPC++ v0.1 events vs v1.0 "
      "futures\nFlan_1565 model tree (%d levels, max front %d), mean of %d "
      "runs\n\n",
      params.levels, params.max_front, runs);

  static std::map<sympack::Api, std::map<int, double>> times;

  for (int P : ranks) {
    gex::Config cfg = gex::Config::from_env();
    cfg.ranks = P;
    cfg.heap_bytes = 128 << 20;
    cfg.segment_bytes = 64 << 20;  // v0.1 stages contributions in segments
    int fails = upcxx::run(cfg, [&] {
      auto tree = sparse::FrontalTree::synthetic(params, upcxx::rank_n());
      for (auto api : {sympack::Api::kV01, sympack::Api::kV10}) {
        double total = 0;
        for (int r = 0; r < runs; ++r) {
          sympack::Solver solver(tree);
          solver.setup();
          double mine = solver.factorize(api);
          total += upcxx::reduce_all(mine, upcxx::op_fast_max{}).wait();
        }
        if (upcxx::rank_me() == 0)
          times[api][upcxx::rank_n()] = total / runs;
        upcxx::barrier();
      }
    });
    if (fails) return 2;
  }

  std::printf("%8s %16s %16s %12s\n", "procs", "v0.1 events(s)",
              "v1.0 futures(s)", "v0.1/v1.0");
  double worst_dev = 0, sum_dev = 0;
  for (int P : ranks) {
    const double t01 = times[sympack::Api::kV01][P];
    const double t10 = times[sympack::Api::kV10][P];
    std::printf("%8d %16.4f %16.4f %11.3fx\n", P, t01, t10, t01 / t10);
    // One-sided: the claim is that v1.0 adds no overhead; v1.0 being
    // *faster* at a point (scheduler luck at higher rank counts) cannot
    // falsify it.
    const double dev = (t10 - t01) / t01;
    worst_dev = std::max(worst_dev, dev);
    sum_dev += (t01 - t10) / t10;
  }

  benchutil::ShapeChecks checks;
  std::printf(
      "\nPaper: performance nearly identical — average difference 0.7%%, "
      "v1.0 up to 7.2%% ahead at one point.\n");
  char buf[128];
  std::snprintf(buf, sizeof buf,
                "measured: mean signed difference %.1f%%, worst v1.0 "
                "slowdown %.1f%%",
                100 * sum_dev / ranks.size(), 100 * worst_dev);
  checks.note(buf);
  checks.expect(worst_dev < 0.35,
                "v1.0 never slower than v0.1 by more than noise at any "
                "rank count (no measurable framework overhead)");
  // v1.0 must not be systematically slower (the paper's headline).
  checks.expect(sum_dev / static_cast<double>(ranks.size()) > -0.10,
                "v1.0 futures add no systematic overhead vs v0.1 events");
  return checks.summary("fig9_sympack_versions");
}
