// Fig 3b reproduction: flood put bandwidth, UPC++ non-blocking rput tracked
// by a promise vs MPI-3 Put in a passive-target epoch flushed at the end
// (IMB Unidir_put aggregate mode).
//
// Paper setup and code outline (§IV-B): issue many rputs with
// operation_cx::as_promise(p), occasional progress every 10 iterations,
// p.finalize().wait() at the end; bandwidth = volume / elapsed. Paper
// result: comparable at small and large sizes, UPC++ up to 33% ahead in the
// 1KB-256KB midrange (most pronounced at 8KB) where per-op software
// overhead, not wire bandwidth, is the limiter.
#include <cstdio>
#include <vector>

#include "arch/timer.hpp"
#include "bench_util.hpp"
#include "minimpi/minimpi.hpp"
#include "upcxx/upcxx.hpp"

namespace {

double upcxx_flood(upcxx::global_ptr<char> dest, const char* src,
                   std::size_t size, int iters) {
  // Verbatim structure of the paper's code outline.
  upcxx::promise<> p;
  const double t0 = arch::now_s();
  for (int it = 0; it < iters; ++it) {
    upcxx::rput(src, dest, size, upcxx::operation_cx::as_promise(p));
    if (!(it % 10)) upcxx::progress();
  }
  p.finalize().wait();
  const double dt = arch::now_s() - t0;
  return static_cast<double>(size) * iters / dt;  // bytes/s
}

double mpi_flood(minimpi::Win& win, const char* src, std::size_t size,
                 int iters) {
  const double t0 = arch::now_s();
  for (int it = 0; it < iters; ++it) win.put(src, size, 1, 0);
  win.flush(1);
  const double dt = arch::now_s() - t0;
  return static_cast<double>(size) * iters / dt;
}

}  // namespace

int main() {
  std::printf(
      "Fig 3b — Flood Put Bandwidth (higher is better)\n"
      "UPC++ promise-tracked rput flood vs minimpi Put flood + flush, 2 "
      "ranks, best of %d trials\n\n",
      benchutil::reps(10, 3));
  benchutil::ShapeChecks checks;
  struct Row {
    std::size_t size;
    double upcxx_mbs, mpi_mbs;
  };
  static std::vector<Row> rows;

  gex::Config cfg = gex::Config::from_env();
  cfg.ranks = 2;
  // The paper's Fig 3b is a native-conduit (direct-wire) comparison; pin
  // it so a global UPCXX_RMA_WIRE=am doesn't turn the UPC++-vs-MPI claims
  // into a cross-wire mismatch — the am wire has its own series below.
  cfg.rma_wire = gex::RmaWire::kDirect;
  int fails = upcxx::run(cfg, [] {
    const int me = upcxx::rank_me();
    constexpr std::size_t kMax = 4 << 20;
    auto seg = upcxx::allocate<char>(kMax);
    upcxx::dist_object<upcxx::global_ptr<char>> dir(seg);
    auto peer = dir.fetch(1 - me).wait();
    // Quiesce upcxx before minimpi::init(): init spins the raw arena
    // barrier, which serves no upcxx progress — if a peer's fetch reply is
    // still pending when a rank enters it, the pair deadlocks (observed
    // deterministically on single-core hosts).
    upcxx::barrier();
    minimpi::init();
    std::vector<char> exposure(kMax), src(kMax, 'y');
    auto win = minimpi::Win::create(exposure.data(), exposure.size());

    const int trials = benchutil::reps(10, 3);
    for (std::size_t size = 8; size <= kMax; size <<= 2) {
      // Keep per-trial volume roughly constant; BENCH_QUICK shrinks it so
      // smoke runs on one-core hosts finish in seconds per size.
      const auto volume = static_cast<std::size_t>(
          (64u << 20) * benchutil::work_scale());
      const int iters =
          static_cast<int>(std::max<std::size_t>(32, volume / size));
      double best_u = 0, best_m = 0;
      for (int t = 0; t < trials; ++t) {
        if (me == 0)
          best_u = std::max(best_u, upcxx_flood(peer, src.data(), size,
                                                iters));
        upcxx::barrier();
        if (me == 0)
          best_m = std::max(best_m, mpi_flood(win, src.data(), size, iters));
        upcxx::barrier();
      }
      if (me == 0)
        rows.push_back({size, best_u / 1e6, best_m / 1e6});
    }
    win.free();
    minimpi::finalize();
    upcxx::barrier();
    upcxx::deallocate(seg);
  });
  if (fails) return 2;

  std::printf("%10s %14s %14s %12s\n", "size", "UPC++ (MB/s)", "MPI (MB/s)",
              "UPC++/MPI");
  double best_mid_ratio = 0;
  std::size_t best_mid_size = 0;
  for (const auto& r : rows) {
    std::printf("%10s %14.1f %14.1f %11.2fx\n",
                benchutil::human_size(r.size).c_str(), r.upcxx_mbs,
                r.mpi_mbs, r.upcxx_mbs / r.mpi_mbs);
    if (r.size >= 1024 && r.size <= 262144) {
      const double ratio = r.upcxx_mbs / r.mpi_mbs;
      if (ratio > best_mid_ratio) {
        best_mid_ratio = ratio;
        best_mid_size = r.size;
      }
    }
  }
  std::printf(
      "\nPaper: bandwidths comparable at the extremes; UPC++ ahead in the "
      "1KB-256KB midrange (up to 33%% at 8KB).\n");
  std::printf("Measured midrange peak advantage: %.0f%% at %s\n",
              (best_mid_ratio - 1) * 100,
              benchutil::human_size(best_mid_size).c_str());
  checks.expect(best_mid_ratio >= 1.0,
                "UPC++ matches or beats MPI somewhere in the 1KB-256KB "
                "midrange");
  const auto& big = rows.back();
  checks.expect(big.upcxx_mbs / big.mpi_mbs > 0.8 &&
                    big.upcxx_mbs / big.mpi_mbs < 1.25,
                "bandwidths comparable at 4MB (memcpy-bound)");

  // ---- simulated bandwidth cap (UPCXX_SIM_BW_GBPS) -------------------------
  // With the cap set, large rputs ride the asynchronous XferEngine whose
  // virtual wire clock gates operation completion: the flood's reported
  // bandwidth must track the configured cap rather than memcpy speed — a
  // real bandwidth curve instead of a memory benchmark. Small messages stay
  // on the synchronous path and ramp toward the cap from above or below
  // depending on the host's memcpy speed.
  double cap_gbps = 2.0;
  if (const char* e = std::getenv("UPCXX_SIM_BW_GBPS"); e && *e)
    cap_gbps = std::atof(e);
  std::printf("\nSimulated wire cap: UPCXX_SIM_BW_GBPS=%.2f (async engine, "
              "chunked)\n", cap_gbps);
  gex::Config simcfg = gex::Config::from_env();
  simcfg.ranks = 2;
  simcfg.rma_wire = gex::RmaWire::kDirect;
  simcfg.sim_bw_gbps = cap_gbps;
  simcfg.rma_async_min = 64 << 10;
  struct SimRow {
    std::size_t size;
    double gbps;
  };
  static std::vector<SimRow> sim_rows;
  static double s_cap;
  s_cap = cap_gbps;
  fails = upcxx::run(simcfg, [] {
    const int me = upcxx::rank_me();
    constexpr std::size_t kMax = 4 << 20;
    auto seg = upcxx::allocate<char>(kMax);
    upcxx::dist_object<upcxx::global_ptr<char>> dir(seg);
    auto peer = dir.fetch(1 - me).wait();
    static std::vector<char> src;
    if (me == 0) src.assign(kMax, 's');
    const int trials = benchutil::reps(5, 2);
    for (std::size_t size : {std::size_t{256} << 10, std::size_t{1} << 20,
                             kMax}) {
      // ~32 MB per trial: a few tens of ms of virtual wire time.
      const int iters = static_cast<int>(std::max<std::size_t>(
          4, static_cast<std::size_t>((32u << 20) * benchutil::work_scale())
                 / size));
      double best = 0;
      for (int t = 0; t < trials; ++t) {
        if (me == 0)
          best = std::max(best,
                          upcxx_flood(peer, src.data(), size, iters));
        upcxx::barrier();
      }
      if (me == 0) sim_rows.push_back({size, best / 1e9});
    }
    upcxx::barrier();
    upcxx::deallocate(seg);
  });
  if (fails) return 2;

  std::printf("%10s %16s %12s\n", "size", "reported (GB/s)", "of cap");
  for (const auto& r : sim_rows)
    std::printf("%10s %16.3f %11.0f%%\n",
                benchutil::human_size(r.size).c_str(), r.gbps,
                100 * r.gbps / s_cap);
  const double big_frac = sim_rows.back().gbps / s_cap;
  checks.expect(big_frac >= 0.8 && big_frac <= 1.2,
                "reported bandwidth within 20% of the configured cap at "
                "4MB");

  // ---- wire=am flood -------------------------------------------------------
  // The same promise-tracked flood with the RMA wire pinned to the AM
  // protocol: every transfer moves as put requests through the target's
  // inbox (chunked above UPCXX_RMA_ASYNC_MIN), and completion waits for
  // acks. Run twice — once with the window pinned (the fixed-window series
  // CI has always tracked) and once with the adaptive controller forced
  // (`window=auto`, the default since the self-tuning transport landed) —
  // and emitted as wire=am series next to wire=direct in BENCH_JSON.
  struct AmRow {
    std::size_t size;
    double mbs;
  };
  static std::vector<AmRow> am_rows;
  auto am_flood = [&fails](gex::Config amcfg) {
    am_rows.clear();
    fails = upcxx::run(amcfg, [] {
      const int me = upcxx::rank_me();
      constexpr std::size_t kMax = 4 << 20;
      auto seg = upcxx::allocate<char>(kMax);
      upcxx::dist_object<upcxx::global_ptr<char>> dir(seg);
      auto peer = dir.fetch(1 - me).wait();
      static std::vector<char> src;
      if (me == 0) src.assign(kMax, 'a');
      upcxx::barrier();
      // Same treatment as the direct-wire flood above (volume, trial
      // count, and a warm first put): the series are divided into each
      // other below, so asymmetric measurement would misstate the
      // protocol cost.
      const int trials = benchutil::reps(10, 3);
      if (me == 0) upcxx::rput(src.data(), peer, kMax).wait();
      upcxx::barrier();
      for (std::size_t size : {std::size_t{8} << 10, std::size_t{256} << 10,
                               kMax}) {
        const auto volume = static_cast<std::size_t>(
            (64u << 20) * benchutil::work_scale());
        const int iters =
            static_cast<int>(std::max<std::size_t>(8, volume / size));
        double best = 0;
        for (int t = 0; t < trials; ++t) {
          if (me == 0)
            best = std::max(best,
                            upcxx_flood(peer, src.data(), size, iters));
          upcxx::barrier();
        }
        if (me == 0) am_rows.push_back({size, best / 1e6});
      }
      upcxx::barrier();
      upcxx::deallocate(seg);
    });
    return am_rows;
  };

  std::printf(
      "\nAM-wire flood (UPCXX_RMA_WIRE=am: request/ack protocol)\n");
  gex::Config amcfg = gex::Config::from_env();
  amcfg.ranks = 2;
  amcfg.rma_wire = gex::RmaWire::kAm;
  // The fixed-window series: pin the default when the environment would
  // select the adaptive controller, keep an explicit CI pin (am-window-1).
  if (gex::resolve_am_window(amcfg).adaptive)
    amcfg.am_window = gex::kDefaultAmWindow;
  const auto fixed_rows = am_flood(amcfg);
  if (fails) return 2;

  gex::Config autocfg = gex::Config::from_env();
  autocfg.ranks = 2;
  autocfg.rma_wire = gex::RmaWire::kAm;
  autocfg.am_window = gex::kAmWindowForceAuto;  // adaptive even under CI pins
  const auto auto_rows = am_flood(autocfg);
  if (fails) return 2;

  std::printf("%10s %16s %16s\n", "size", "am fixed (MB/s)",
              "am auto (MB/s)");
  for (std::size_t i = 0; i < fixed_rows.size(); ++i)
    std::printf("%10s %16.1f %16.1f\n",
                benchutil::human_size(fixed_rows[i].size).c_str(),
                fixed_rows[i].mbs, auto_rows[i].mbs);
  const double am_vs_direct = fixed_rows.back().mbs / big.upcxx_mbs;
  const double am_auto_vs_direct = auto_rows.back().mbs / big.upcxx_mbs;
  {
    char nbuf[200];
    std::snprintf(nbuf, sizeof nbuf,
                  "am wire reaches %.0f%% (fixed window) / %.0f%% "
                  "(window=auto) of direct-wire bandwidth at 4MB (credit "
                  "window + pooled staging both directions + batched acks; "
                  "the residual is the extra copy)",
                  100 * am_vs_direct, 100 * am_auto_vs_direct);
    checks.note(nbuf);
  }
  // Flow control + hot pooled staging + ack batching keep the request/ack
  // protocol within shouting distance of the direct memcpy wire (was ~35%
  // before the transport performance layer). The floor leaves margin for
  // scheduler noise on oversubscribed single-core hosts; the JSON metrics
  // carry the exact ratios.
  checks.expect(am_vs_direct >= 0.5,
                "am-wire flood reaches at least half of direct-wire "
                "bandwidth at 4MB");
  checks.expect(am_auto_vs_direct >= 0.5,
                "adaptive-window am-wire flood reaches at least half of "
                "direct-wire bandwidth at 4MB");

  // ---- transport=socket flood ----------------------------------------------
  // The same am-wire flood with the records framed onto loopback TCP
  // (UPCXX_AM_TRANSPORT=socket): every chunk rides a kernel socket instead
  // of a shared ring, staging is inline-only, and completion still waits
  // for acks. No pass/fail floor — loopback throughput is host-dependent —
  // but the series lands in BENCH_JSON next to the ring transports.
  std::printf(
      "\nSocket-transport flood (UPCXX_AM_TRANSPORT=socket: records framed "
      "onto loopback TCP)\n");
  gex::Config sockcfg = gex::Config::from_env();
  sockcfg.ranks = 2;
  sockcfg.am_transport = gex::AmTransport::kSocket;
  sockcfg.rma_wire = gex::RmaWire::kAm;
  if (gex::resolve_am_window(sockcfg).adaptive)
    sockcfg.am_window = gex::kDefaultAmWindow;
  const auto socket_rows = am_flood(sockcfg);
  if (fails) return 2;
  std::printf("%10s %16s\n", "size", "socket (MB/s)");
  for (const auto& r : socket_rows)
    std::printf("%10s %16.1f\n", benchutil::human_size(r.size).c_str(),
                r.mbs);
  const double socket_vs_direct = socket_rows.back().mbs / big.upcxx_mbs;
  {
    char nbuf[160];
    std::snprintf(nbuf, sizeof nbuf,
                  "socket transport reaches %.0f%% of direct-wire bandwidth "
                  "at 4MB (loopback TCP + inline-only staging)",
                  100 * socket_vs_direct);
    checks.note(nbuf);
  }

  benchutil::JsonReport json("fig3_rma_bandwidth");
  json.metric("midrange_peak_ratio", best_mid_ratio);
  json.metric("upcxx_4mb_mbs", big.upcxx_mbs);
  json.metric("mpi_4mb_mbs", big.mpi_mbs);
  json.metric("simbw_cap_gbps", s_cap);
  json.metric("simbw_4mb_gbps", sim_rows.back().gbps);
  for (const auto& r : fixed_rows)
    json.metric("am_" + std::to_string(r.size) + "_mbs", r.mbs);
  json.metric("am_4mb_vs_direct", am_vs_direct);
  for (const auto& r : auto_rows)
    json.metric("am_auto_" + std::to_string(r.size) + "_mbs", r.mbs);
  json.metric("am_auto_4mb_vs_direct", am_auto_vs_direct);
  for (const auto& r : socket_rows)
    json.metric("socket_" + std::to_string(r.size) + "_mbs", r.mbs);
  json.metric("socket_4mb_vs_direct", socket_vs_direct);
  json.write();
  return checks.summary("fig3_rma_bandwidth");
}
