// Ablation A2 (§III / DESIGN.md): eager vs rendezvous active-message
// protocol around the configurable threshold.
//
// Payloads at or below eager_max travel inline through the inbox ring (one
// copy in, one copy out); larger payloads are staged in the shared heap and
// only a descriptor crosses the ring (zero-copy delivery via view
// adoption). This bench sweeps RPC payload size for two thresholds to show
// the crossover and justify the 8 KiB default.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "arch/timer.hpp"
#include "bench_util.hpp"
#include "upcxx/upcxx.hpp"

namespace {
std::atomic<long> g_received{0};
}

int main() {
  std::printf(
      "Ablation — AM eager/rendezvous threshold (RPC payload throughput, 2 "
      "ranks)\n\n");
  const std::vector<std::size_t> sizes{256, 1024, 4096, 16384, 65536,
                                       262144};
  const std::vector<std::size_t> thresholds{512, 8192, 65536};
  // MB/s per (threshold, size).
  static std::vector<std::vector<double>> rate;

  for (std::size_t th : thresholds) {
    rate.emplace_back();
    for (std::size_t sz : sizes) {
      gex::Config cfg = gex::Config::from_env();
      cfg.ranks = 2;
      cfg.eager_max = th;
      cfg.ring_bytes = 1 << 20;
      cfg.heap_bytes = 256 << 20;
      const int iters = static_cast<int>(
          std::max<std::size_t>(64, ((16u << 20) / sz)) *
          benchutil::work_scale());
      static double mbs;
      int fails = upcxx::run(cfg, [sz, iters] {
        g_received = 0;
        std::vector<double> payload(sz / sizeof(double));
        upcxx::barrier();
        if (upcxx::rank_me() == 0) {
          const double t0 = arch::now_s();
          upcxx::promise<> p;
          for (int i = 0; i < iters; ++i) {
            p.require_anonymous(1);
            upcxx::rpc(1,
                       [](upcxx::view<double> v) {
                         g_received.fetch_add(
                             static_cast<long>(v.size()),
                             std::memory_order_relaxed);
                       },
                       upcxx::make_view(payload.data(),
                                        payload.data() + payload.size()))
                .then([p]() mutable { p.fulfill_anonymous(1); });
            if (!(i % 8)) upcxx::progress();
          }
          p.finalize().wait();
          mbs = static_cast<double>(sz) * iters /
                (arch::now_s() - t0) / 1e6;
        } else {
          const long expect =
              static_cast<long>(iters) *
              static_cast<long>(sz / sizeof(double));
          while (g_received.load(std::memory_order_relaxed) < expect)
            upcxx::progress();
        }
        upcxx::barrier();
      });
      if (fails) return 2;
      rate.back().push_back(mbs);
    }
  }

  std::printf("%10s", "payload");
  for (std::size_t th : thresholds)
    std::printf("  eager<=%-8s", benchutil::human_size(th).c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    std::printf("%10s", benchutil::human_size(sizes[i]).c_str());
    for (std::size_t t = 0; t < thresholds.size(); ++t)
      std::printf("  %10.1fMB/s", rate[t][i]);
    std::printf("\n");
  }

  // ---- RMA AM protocol (wire=am): eager/rendezvous crossover ---------------
  // The put/get request handlers (gex/rma_am.cpp) ride the same
  // two-protocol split: a request whose payload fits eager_max travels
  // inline through the ring, larger ones stage in the shared heap with a
  // descriptor. Blocking rput latency per payload size under two
  // thresholds locates the crossover for the new handlers; rget follows
  // the reply path (the reply carries the payload).
  const std::vector<std::size_t> rma_sizes{256, 1024, 4096, 16384, 65536};
  const std::vector<std::size_t> rma_thresholds{512, 65536};
  // us per blocking op: [threshold][size], puts then gets.
  static std::vector<std::vector<double>> put_us, get_us;
  for (std::size_t th : rma_thresholds) {
    put_us.emplace_back();
    get_us.emplace_back();
    for (std::size_t sz : rma_sizes) {
      gex::Config cfg = gex::Config::from_env();
      cfg.ranks = 2;
      cfg.rma_wire = gex::RmaWire::kAm;
      cfg.rma_async_min = 0;  // one protocol request per op, no chunking
      cfg.eager_max = th;
      cfg.ring_bytes = 1 << 20;
      cfg.heap_bytes = 128 << 20;
      const int iters = static_cast<int>(
          std::max<std::size_t>(128, ((8u << 20) / sz)) *
          benchutil::work_scale());
      static double s_put_us, s_get_us;
      int fails = upcxx::run(cfg, [sz, iters] {
        static upcxx::global_ptr<char> remote;
        if (upcxx::rank_me() == 1) remote = upcxx::allocate<char>(sz);
        upcxx::barrier();
        if (upcxx::rank_me() == 0) {
          std::vector<char> buf(sz, 'p');
          upcxx::rput(buf.data(), remote, sz).wait();  // warm
          double t0 = arch::now_s();
          for (int i = 0; i < iters; ++i)
            upcxx::rput(buf.data(), remote, sz).wait();
          s_put_us = (arch::now_s() - t0) / iters * 1e6;
          t0 = arch::now_s();
          for (int i = 0; i < iters; ++i)
            upcxx::rget(remote, buf.data(), sz).wait();
          s_get_us = (arch::now_s() - t0) / iters * 1e6;
        }
        upcxx::barrier();  // rank 1 serves requests inside this barrier
        if (upcxx::rank_me() == 1) upcxx::deallocate(remote);
        upcxx::barrier();
      });
      if (fails) return 2;
      put_us.back().push_back(s_put_us);
      get_us.back().push_back(s_get_us);
    }
  }

  std::printf(
      "\nRMA AM protocol (UPCXX_RMA_WIRE=am), blocking op latency in us:\n");
  std::printf("%10s", "payload");
  for (std::size_t th : rma_thresholds)
    std::printf("  put@eag%-7s  get@eag%-7s",
                benchutil::human_size(th).c_str(),
                benchutil::human_size(th).c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < rma_sizes.size(); ++i) {
    std::printf("%10s", benchutil::human_size(rma_sizes[i]).c_str());
    for (std::size_t t = 0; t < rma_thresholds.size(); ++t)
      std::printf("  %13.2f  %13.2f", put_us[t][i], get_us[t][i]);
    std::printf("\n");
  }
  // The crossover: smallest payload where rendezvous requests (everything
  // above the 512B threshold) beat the all-eager configuration.
  std::size_t crossover = 0;
  for (std::size_t i = 0; i < rma_sizes.size(); ++i) {
    if (rma_sizes[i] > rma_thresholds[0] && put_us[0][i] < put_us[1][i]) {
      crossover = rma_sizes[i];
      break;
    }
  }

  // ---- flow-control window sweep (UPCXX_AM_WINDOW) -------------------------
  // The credit window caps unacknowledged requests per target; the sweep
  // makes the knee visible next to the eager/rendezvous crossover above.
  // W=1 is fully serialized (each put waits out its predecessor's ack);
  // widening the window pipelines request/ack rounds until the in-flight
  // staging outgrows the cache and the curve flattens or dips.
  const std::vector<std::uint32_t> windows{1, 4, 16, 64};
  constexpr std::size_t kSweepBytes = 32 << 10;  // staged-pool puts
  static std::vector<double> win_mbs;
  win_mbs.clear();
  for (std::uint32_t w : windows) {
    gex::Config cfg = gex::Config::from_env();
    cfg.ranks = 2;
    cfg.rma_wire = gex::RmaWire::kAm;
    cfg.rma_async_min = 0;  // one protocol request per rput
    cfg.am_window = w;
    cfg.ring_bytes = 1 << 20;
    cfg.heap_bytes = 128 << 20;
    const int iters = static_cast<int>(256 * benchutil::work_scale());
    static double s_mbs;
    int fails = upcxx::run(cfg, [iters] {
      static upcxx::global_ptr<char> remote;
      if (upcxx::rank_me() == 1) remote = upcxx::allocate<char>(kSweepBytes);
      upcxx::barrier();
      if (upcxx::rank_me() == 0) {
        std::vector<char> buf(kSweepBytes, 'w');
        upcxx::rput(buf.data(), remote, kSweepBytes).wait();  // warm
        upcxx::promise<> p;
        const double t0 = arch::now_s();
        for (int i = 0; i < iters; ++i) {
          upcxx::rput(buf.data(), remote, kSweepBytes,
                      upcxx::operation_cx::as_promise(p));
          if (!(i % 8)) upcxx::progress();
        }
        p.finalize().wait();
        s_mbs = static_cast<double>(kSweepBytes) * iters /
                (arch::now_s() - t0) / 1e6;
      }
      upcxx::barrier();
      if (upcxx::rank_me() == 1) upcxx::deallocate(remote);
      upcxx::barrier();
    });
    if (fails) return 2;
    win_mbs.push_back(s_mbs);
  }
  std::printf("\nFlow-control window sweep (32KB rput flood, wire=am):\n");
  std::printf("%10s %14s\n", "window", "rate (MB/s)");
  for (std::size_t i = 0; i < windows.size(); ++i)
    std::printf("%10u %14.1f\n", windows[i], win_mbs[i]);

  benchutil::ShapeChecks checks;
  // The knee: any pipelining at all must beat full serialization. Compare
  // the best windowed rate against W=1 (individual points are noisy on
  // oversubscribed hosts; the envelope is the signal).
  const double best_windowed =
      *std::max_element(win_mbs.begin() + 1, win_mbs.end());
  checks.expect(best_windowed > win_mbs[0],
                "a pipelined window beats W=1 full serialization");
  if (crossover)
    checks.note("rma-am put eager->rendezvous crossover at " +
                benchutil::human_size(crossover));
  else
    checks.note("rma-am put: eager wins at every measured size on this "
                "host (ring copy beats heap staging)");
  checks.expect(put_us[0][4] <= put_us[1][4] * 2.0,
                "rendezvous puts not pathological at 64KB payloads");
  std::printf(
      "\nExpected shape: small payloads are insensitive to the threshold; "
      "large payloads benefit from rendezvous (single staging copy instead "
      "of squeezing through the ring).\n");
  // The real protocol crossover: at 16KB payloads the default config ships
  // rendezvous while the 64KB-threshold config squeezes them through the
  // ring (flow-control stalls); rendezvous must win clearly there. At
  // 256KB all three configs are rendezvous, so that point only measures
  // heap-state noise — reported, not asserted.
  const std::size_t i16k = 3;  // sizes[3] == 16KB
  checks.expect(rate[1][i16k] >= rate[2][i16k],
                "rendezvous beats all-eager for 16KB payloads");
  checks.expect(rate[1][0] >= rate[0][0] * 0.5,
                "default threshold not pathological for small payloads");
  benchutil::JsonReport json("abl_am_protocol");
  for (std::size_t i = 0; i < windows.size(); ++i)
    json.metric("window_" + std::to_string(windows[i]) + "_mbs",
                win_mbs[i]);
  json.metric("window_best_vs_w1", best_windowed / win_mbs[0]);
  if (crossover)
    json.metric("put_crossover_bytes", static_cast<double>(crossover));
  json.write();
  return checks.summary("abl_am_protocol");
}
