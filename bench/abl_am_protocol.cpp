// Ablation A2 (§III / DESIGN.md): eager vs rendezvous active-message
// protocol around the configurable threshold.
//
// Payloads at or below eager_max travel inline through the inbox ring (one
// copy in, one copy out); larger payloads are staged in the shared heap and
// only a descriptor crosses the ring (zero-copy delivery via view
// adoption). This bench sweeps RPC payload size for two thresholds to show
// the crossover and justify the 8 KiB default.
#include <atomic>
#include <cstdio>
#include <vector>

#include "arch/timer.hpp"
#include "bench_util.hpp"
#include "upcxx/upcxx.hpp"

namespace {
std::atomic<long> g_received{0};
}

int main() {
  std::printf(
      "Ablation — AM eager/rendezvous threshold (RPC payload throughput, 2 "
      "ranks)\n\n");
  const std::vector<std::size_t> sizes{256, 1024, 4096, 16384, 65536,
                                       262144};
  const std::vector<std::size_t> thresholds{512, 8192, 65536};
  // MB/s per (threshold, size).
  static std::vector<std::vector<double>> rate;

  for (std::size_t th : thresholds) {
    rate.emplace_back();
    for (std::size_t sz : sizes) {
      gex::Config cfg = gex::Config::from_env();
      cfg.ranks = 2;
      cfg.eager_max = th;
      cfg.ring_bytes = 1 << 20;
      cfg.heap_bytes = 256 << 20;
      const int iters = static_cast<int>(
          std::max<std::size_t>(64, ((16u << 20) / sz)) *
          benchutil::work_scale());
      static double mbs;
      int fails = upcxx::run(cfg, [sz, iters] {
        g_received = 0;
        std::vector<double> payload(sz / sizeof(double));
        upcxx::barrier();
        if (upcxx::rank_me() == 0) {
          const double t0 = arch::now_s();
          upcxx::promise<> p;
          for (int i = 0; i < iters; ++i) {
            p.require_anonymous(1);
            upcxx::rpc(1,
                       [](upcxx::view<double> v) {
                         g_received.fetch_add(
                             static_cast<long>(v.size()),
                             std::memory_order_relaxed);
                       },
                       upcxx::make_view(payload.data(),
                                        payload.data() + payload.size()))
                .then([p]() mutable { p.fulfill_anonymous(1); });
            if (!(i % 8)) upcxx::progress();
          }
          p.finalize().wait();
          mbs = static_cast<double>(sz) * iters /
                (arch::now_s() - t0) / 1e6;
        } else {
          const long expect =
              static_cast<long>(iters) *
              static_cast<long>(sz / sizeof(double));
          while (g_received.load(std::memory_order_relaxed) < expect)
            upcxx::progress();
        }
        upcxx::barrier();
      });
      if (fails) return 2;
      rate.back().push_back(mbs);
    }
  }

  std::printf("%10s", "payload");
  for (std::size_t th : thresholds)
    std::printf("  eager<=%-8s", benchutil::human_size(th).c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    std::printf("%10s", benchutil::human_size(sizes[i]).c_str());
    for (std::size_t t = 0; t < thresholds.size(); ++t)
      std::printf("  %10.1fMB/s", rate[t][i]);
    std::printf("\n");
  }

  benchutil::ShapeChecks checks;
  std::printf(
      "\nExpected shape: small payloads are insensitive to the threshold; "
      "large payloads benefit from rendezvous (single staging copy instead "
      "of squeezing through the ring).\n");
  // The real protocol crossover: at 16KB payloads the default config ships
  // rendezvous while the 64KB-threshold config squeezes them through the
  // ring (flow-control stalls); rendezvous must win clearly there. At
  // 256KB all three configs are rendezvous, so that point only measures
  // heap-state noise — reported, not asserted.
  const std::size_t i16k = 3;  // sizes[3] == 16KB
  checks.expect(rate[1][i16k] >= rate[2][i16k],
                "rendezvous beats all-eager for 16KB payloads");
  checks.expect(rate[1][0] >= rate[0][0] * 0.5,
                "default threshold not pathological for small payloads");
  return checks.summary("abl_am_protocol");
}
