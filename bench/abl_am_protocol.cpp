// Ablation A2 (§III / DESIGN.md): eager vs rendezvous active-message
// protocol around the configurable threshold.
//
// Payloads at or below eager_max travel inline through the inbox ring (one
// copy in, one copy out); larger payloads are staged in the shared heap and
// only a descriptor crosses the ring (zero-copy delivery via view
// adoption). This bench sweeps RPC payload size for two thresholds to show
// the crossover and justify the 8 KiB default.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "arch/timer.hpp"
#include "bench_util.hpp"
#include "gex/rma_am.hpp"
#include "gex/runtime.hpp"
#include "upcxx/upcxx.hpp"

namespace {
std::atomic<long> g_received{0};
}

int main() {
  std::printf(
      "Ablation — AM eager/rendezvous threshold (RPC payload throughput, 2 "
      "ranks)\n\n");
  const std::vector<std::size_t> sizes{256, 1024, 4096, 16384, 65536,
                                       262144};
  const std::vector<std::size_t> thresholds{512, 8192, 65536};
  // MB/s per (threshold, size).
  static std::vector<std::vector<double>> rate;

  for (std::size_t th : thresholds) {
    rate.emplace_back();
    for (std::size_t sz : sizes) {
      gex::Config cfg = gex::Config::from_env();
      cfg.ranks = 2;
      cfg.eager_max = th;
      cfg.ring_bytes = 1 << 20;
      cfg.heap_bytes = 256 << 20;
      const int iters = static_cast<int>(
          std::max<std::size_t>(64, ((16u << 20) / sz)) *
          benchutil::work_scale());
      static double mbs;
      int fails = upcxx::run(cfg, [sz, iters] {
        g_received = 0;
        std::vector<double> payload(sz / sizeof(double));
        upcxx::barrier();
        if (upcxx::rank_me() == 0) {
          const double t0 = arch::now_s();
          upcxx::promise<> p;
          for (int i = 0; i < iters; ++i) {
            p.require_anonymous(1);
            upcxx::rpc(1,
                       [](upcxx::view<double> v) {
                         g_received.fetch_add(
                             static_cast<long>(v.size()),
                             std::memory_order_relaxed);
                       },
                       upcxx::make_view(payload.data(),
                                        payload.data() + payload.size()))
                .then([p]() mutable { p.fulfill_anonymous(1); });
            if (!(i % 8)) upcxx::progress();
          }
          p.finalize().wait();
          mbs = static_cast<double>(sz) * iters /
                (arch::now_s() - t0) / 1e6;
        } else {
          const long expect =
              static_cast<long>(iters) *
              static_cast<long>(sz / sizeof(double));
          while (g_received.load(std::memory_order_relaxed) < expect)
            upcxx::progress();
        }
        upcxx::barrier();
      });
      if (fails) return 2;
      rate.back().push_back(mbs);
    }
  }

  std::printf("%10s", "payload");
  for (std::size_t th : thresholds)
    std::printf("  eager<=%-8s", benchutil::human_size(th).c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    std::printf("%10s", benchutil::human_size(sizes[i]).c_str());
    for (std::size_t t = 0; t < thresholds.size(); ++t)
      std::printf("  %10.1fMB/s", rate[t][i]);
    std::printf("\n");
  }

  // ---- RMA AM protocol (wire=am): eager/rendezvous crossover ---------------
  // The put/get request handlers (gex/rma_am.cpp) ride the same
  // two-protocol split: a request whose payload fits eager_max travels
  // inline through the ring, larger ones stage in the shared heap with a
  // descriptor. Blocking rput latency per payload size under two
  // thresholds locates the crossover for the new handlers; rget follows
  // the reply path (the reply carries the payload).
  const std::vector<std::size_t> rma_sizes{256, 1024, 4096, 16384, 65536};
  const std::vector<std::size_t> rma_thresholds{512, 65536};
  // us per blocking op: [threshold][size], puts then gets.
  static std::vector<std::vector<double>> put_us, get_us;
  for (std::size_t th : rma_thresholds) {
    put_us.emplace_back();
    get_us.emplace_back();
    for (std::size_t sz : rma_sizes) {
      gex::Config cfg = gex::Config::from_env();
      cfg.ranks = 2;
      cfg.rma_wire = gex::RmaWire::kAm;
      cfg.rma_async_min = 0;  // one protocol request per op, no chunking
      cfg.eager_max = th;
      cfg.ring_bytes = 1 << 20;
      cfg.heap_bytes = 128 << 20;
      const int iters = static_cast<int>(
          std::max<std::size_t>(128, ((8u << 20) / sz)) *
          benchutil::work_scale());
      static double s_put_us, s_get_us;
      int fails = upcxx::run(cfg, [sz, iters] {
        static upcxx::global_ptr<char> remote;
        if (upcxx::rank_me() == 1) remote = upcxx::allocate<char>(sz);
        upcxx::barrier();
        if (upcxx::rank_me() == 0) {
          std::vector<char> buf(sz, 'p');
          upcxx::rput(buf.data(), remote, sz).wait();  // warm
          double t0 = arch::now_s();
          for (int i = 0; i < iters; ++i)
            upcxx::rput(buf.data(), remote, sz).wait();
          s_put_us = (arch::now_s() - t0) / iters * 1e6;
          t0 = arch::now_s();
          for (int i = 0; i < iters; ++i)
            upcxx::rget(remote, buf.data(), sz).wait();
          s_get_us = (arch::now_s() - t0) / iters * 1e6;
        }
        upcxx::barrier();  // rank 1 serves requests inside this barrier
        if (upcxx::rank_me() == 1) upcxx::deallocate(remote);
        upcxx::barrier();
      });
      if (fails) return 2;
      put_us.back().push_back(s_put_us);
      get_us.back().push_back(s_get_us);
    }
  }

  std::printf(
      "\nRMA AM protocol (UPCXX_RMA_WIRE=am), blocking op latency in us:\n");
  std::printf("%10s", "payload");
  for (std::size_t th : rma_thresholds)
    std::printf("  put@eag%-7s  get@eag%-7s",
                benchutil::human_size(th).c_str(),
                benchutil::human_size(th).c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < rma_sizes.size(); ++i) {
    std::printf("%10s", benchutil::human_size(rma_sizes[i]).c_str());
    for (std::size_t t = 0; t < rma_thresholds.size(); ++t)
      std::printf("  %13.2f  %13.2f", put_us[t][i], get_us[t][i]);
    std::printf("\n");
  }
  // The crossover: smallest payload where rendezvous requests (everything
  // above the 512B threshold) beat the all-eager configuration.
  std::size_t crossover = 0;
  for (std::size_t i = 0; i < rma_sizes.size(); ++i) {
    if (rma_sizes[i] > rma_thresholds[0] && put_us[0][i] < put_us[1][i]) {
      crossover = rma_sizes[i];
      break;
    }
  }

  // ---- flow-control window sweep (UPCXX_AM_WINDOW) -------------------------
  // The credit window caps unacknowledged requests per target; the sweep
  // makes the knee visible next to the eager/rendezvous crossover above.
  // W=1 is fully serialized (each put waits out its predecessor's ack);
  // widening the window pipelines request/ack rounds until the in-flight
  // staging outgrows the cache and the curve flattens or dips.
  const std::vector<std::uint32_t> windows{1, 4, 16, 64};
  constexpr std::size_t kSweepBytes = 32 << 10;  // staged-pool puts
  static std::vector<double> win_mbs;
  win_mbs.clear();
  for (std::uint32_t w : windows) {
    gex::Config cfg = gex::Config::from_env();
    cfg.ranks = 2;
    cfg.rma_wire = gex::RmaWire::kAm;
    cfg.rma_async_min = 0;  // one protocol request per rput
    cfg.am_window = w;
    cfg.ring_bytes = 1 << 20;
    cfg.heap_bytes = 128 << 20;
    const int iters = static_cast<int>(256 * benchutil::work_scale());
    static double s_mbs;
    int fails = upcxx::run(cfg, [iters] {
      static upcxx::global_ptr<char> remote;
      if (upcxx::rank_me() == 1) remote = upcxx::allocate<char>(kSweepBytes);
      upcxx::barrier();
      if (upcxx::rank_me() == 0) {
        std::vector<char> buf(kSweepBytes, 'w');
        upcxx::rput(buf.data(), remote, kSweepBytes).wait();  // warm
        upcxx::promise<> p;
        const double t0 = arch::now_s();
        for (int i = 0; i < iters; ++i) {
          upcxx::rput(buf.data(), remote, kSweepBytes,
                      upcxx::operation_cx::as_promise(p));
          if (!(i % 8)) upcxx::progress();
        }
        p.finalize().wait();
        s_mbs = static_cast<double>(kSweepBytes) * iters /
                (arch::now_s() - t0) / 1e6;
      }
      upcxx::barrier();
      if (upcxx::rank_me() == 1) upcxx::deallocate(remote);
      upcxx::barrier();
    });
    if (fails) return 2;
    win_mbs.push_back(s_mbs);
  }
  // Get-direction knee: same flood, but the payload rides the *reply* path
  // (target stages it in a pooled shared-heap buffer, initiator's rack
  // recycles the buffer). The knee should mirror the put sweep's — if it
  // doesn't, reply staging is the bottleneck, not the request window.
  static std::vector<double> get_win_mbs;
  get_win_mbs.clear();
  for (std::uint32_t w : windows) {
    gex::Config cfg = gex::Config::from_env();
    cfg.ranks = 2;
    cfg.rma_wire = gex::RmaWire::kAm;
    cfg.rma_async_min = 0;  // one protocol request per rget
    cfg.am_window = w;
    cfg.ring_bytes = 1 << 20;
    cfg.heap_bytes = 128 << 20;
    const int iters = static_cast<int>(256 * benchutil::work_scale());
    static double s_mbs;
    int fails = upcxx::run(cfg, [iters] {
      static upcxx::global_ptr<char> remote;
      if (upcxx::rank_me() == 1) remote = upcxx::allocate<char>(kSweepBytes);
      upcxx::barrier();
      if (upcxx::rank_me() == 0) {
        std::vector<char> buf(kSweepBytes);
        upcxx::rget(remote, buf.data(), kSweepBytes).wait();  // warm
        upcxx::promise<> p;
        const double t0 = arch::now_s();
        for (int i = 0; i < iters; ++i) {
          upcxx::rget(remote, buf.data(), kSweepBytes,
                      upcxx::operation_cx::as_promise(p));
          if (!(i % 8)) upcxx::progress();
        }
        p.finalize().wait();
        s_mbs = static_cast<double>(kSweepBytes) * iters /
                (arch::now_s() - t0) / 1e6;
      }
      upcxx::barrier();
      if (upcxx::rank_me() == 1) upcxx::deallocate(remote);
      upcxx::barrier();
    });
    if (fails) return 2;
    get_win_mbs.push_back(s_mbs);
  }
  std::printf(
      "\nFlow-control window sweep (32KB flood, wire=am), both directions:\n");
  std::printf("%10s %14s %14s\n", "window", "put (MB/s)", "get (MB/s)");
  for (std::size_t i = 0; i < windows.size(); ++i)
    std::printf("%10u %14.1f %14.1f\n", windows[i], win_mbs[i],
                get_win_mbs[i]);

  // ---- put/get symmetry at 4MB, window=auto --------------------------------
  // Large transfers with every knob at its default (adaptive window,
  // auto chunking). Before pooled reply staging, every rendezvous reply
  // was a fresh shared-heap allocation plus a descriptor round-trip, and
  // gets trailed puts badly at this size; with the reply pool recycling
  // through racks the two directions should be near-symmetric. The
  // protocol counters from both ranks are surfaced in BENCH_JSON so a
  // regression here is attributable (pool misses vs window thrash).
  constexpr std::size_t kBigBytes = 4 << 20;
  static double s_put4_mbs, s_get4_mbs;
  static gex::RmaAmProtocol::Stats s_stats[2];
  {
    gex::Config cfg = gex::Config::from_env();
    cfg.ranks = 2;
    cfg.rma_wire = gex::RmaWire::kAm;
    cfg.am_window = gex::kAmWindowForceAuto;  // adaptive even under CI pins
    cfg.ring_bytes = 1 << 20;
    cfg.heap_bytes = 256 << 20;
    const int iters = static_cast<int>(std::max(
        8.0, 16 * benchutil::work_scale()));
    int fails = upcxx::run(cfg, [iters] {
      static upcxx::global_ptr<char> remote;
      if (upcxx::rank_me() == 1) remote = upcxx::allocate<char>(kBigBytes);
      upcxx::barrier();
      if (upcxx::rank_me() == 0) {
        std::vector<char> buf(kBigBytes, 's');
        // Best of several trials per direction: a single flood is at the
        // mercy of one descheduling blip, and the symmetry ratio divides
        // two of them. The envelope is the signal (same treatment as the
        // fig3 floods).
        const int trials = benchutil::reps(5, 3);
        upcxx::rput(buf.data(), remote, kBigBytes).wait();  // warm
        s_put4_mbs = 0;
        for (int t = 0; t < trials; ++t) {
          upcxx::promise<> pp;
          const double t0 = arch::now_s();
          for (int i = 0; i < iters; ++i)
            upcxx::rput(buf.data(), remote, kBigBytes,
                        upcxx::operation_cx::as_promise(pp));
          pp.finalize().wait();
          s_put4_mbs = std::max(s_put4_mbs,
                                static_cast<double>(kBigBytes) * iters /
                                    (arch::now_s() - t0) / 1e6);
        }
        upcxx::rget(remote, buf.data(), kBigBytes).wait();  // warm
        s_get4_mbs = 0;
        for (int t = 0; t < trials; ++t) {
          upcxx::promise<> gp;
          const double t0 = arch::now_s();
          for (int i = 0; i < iters; ++i)
            upcxx::rget(remote, buf.data(), kBigBytes,
                        upcxx::operation_cx::as_promise(gp));
          gp.finalize().wait();
          s_get4_mbs = std::max(s_get4_mbs,
                                static_cast<double>(kBigBytes) * iters /
                                    (arch::now_s() - t0) / 1e6);
        }
      }
      upcxx::barrier();  // rank 1 serves requests inside this barrier
      s_stats[upcxx::rank_me()] = gex::rma_am().stats();
      upcxx::barrier();
      if (upcxx::rank_me() == 1) upcxx::deallocate(remote);
      upcxx::barrier();
    });
    if (fails) return 2;
  }
  const double get_vs_put = s_get4_mbs / s_put4_mbs;
  std::printf(
      "\n4MB put/get symmetry (window=auto): put %.1f MB/s, get %.1f MB/s "
      "(get/put = %.2f)\n",
      s_put4_mbs, s_get4_mbs, get_vs_put);
  const auto stat_sum = [](auto f) {
    return static_cast<double>(f(s_stats[0]) + f(s_stats[1]));
  };
  const double st_replies_staged =
      stat_sum([](const auto& s) { return s.replies_staged; });
  const double st_reply_pool_hits =
      stat_sum([](const auto& s) { return s.reply_pool_hits; });
  const double st_reply_fallbacks =
      stat_sum([](const auto& s) { return s.reply_fallbacks; });
  const double st_window_grow =
      stat_sum([](const auto& s) { return s.window_grow; });
  const double st_window_shrink =
      stat_sum([](const auto& s) { return s.window_shrink; });
  std::printf(
      "  protocol counters (both ranks): replies_staged=%.0f "
      "reply_pool_hits=%.0f reply_fallbacks=%.0f window_grow=%.0f "
      "window_shrink=%.0f\n",
      st_replies_staged, st_reply_pool_hits, st_reply_fallbacks,
      st_window_grow, st_window_shrink);

  benchutil::ShapeChecks checks;
  // The knee: any pipelining at all must beat full serialization. Compare
  // the best windowed rate against W=1 (individual points are noisy on
  // oversubscribed hosts; the envelope is the signal).
  const double best_windowed =
      *std::max_element(win_mbs.begin() + 1, win_mbs.end());
  checks.expect(best_windowed > win_mbs[0],
                "a pipelined window beats W=1 full serialization");
  // The get direction overlaps even at W=1 — the target can serve request
  // k+1 while the initiator scatters reply k, so full serialization never
  // quite happens and "windowed strictly beats W=1" is not a stable claim
  // the way it is for puts. Guard against pathology instead: widening the
  // window must not collapse the rate.
  const double best_get_windowed =
      *std::max_element(get_win_mbs.begin() + 1, get_win_mbs.end());
  checks.expect(best_get_windowed >= get_win_mbs[0] * 0.7,
                "widened windows do not collapse get-direction bandwidth");
  // The headline symmetry claim: pooled reply staging makes the get
  // direction keep pace with puts at large sizes (within 10%).
  checks.expect(get_vs_put >= 0.9,
                "4MB gets within 10% of puts under window=auto");
  checks.expect(st_replies_staged > 0,
                "4MB gets exercised the staged-reply path");
  if (crossover)
    checks.note("rma-am put eager->rendezvous crossover at " +
                benchutil::human_size(crossover));
  else
    checks.note("rma-am put: eager wins at every measured size on this "
                "host (ring copy beats heap staging)");
  checks.expect(put_us[0][4] <= put_us[1][4] * 2.0,
                "rendezvous puts not pathological at 64KB payloads");
  std::printf(
      "\nExpected shape: small payloads are insensitive to the threshold; "
      "large payloads benefit from rendezvous (single staging copy instead "
      "of squeezing through the ring).\n");
  // The real protocol crossover: at 16KB payloads the default config ships
  // rendezvous while the 64KB-threshold config squeezes them through the
  // ring (flow-control stalls); rendezvous must win clearly there. At
  // 256KB all three configs are rendezvous, so that point only measures
  // heap-state noise — reported, not asserted.
  const std::size_t i16k = 3;  // sizes[3] == 16KB
  checks.expect(rate[1][i16k] >= rate[2][i16k],
                "rendezvous beats all-eager for 16KB payloads");
  checks.expect(rate[1][0] >= rate[0][0] * 0.5,
                "default threshold not pathological for small payloads");
  benchutil::JsonReport json("abl_am_protocol");
  for (std::size_t i = 0; i < windows.size(); ++i)
    json.metric("window_" + std::to_string(windows[i]) + "_mbs",
                win_mbs[i]);
  json.metric("window_best_vs_w1", best_windowed / win_mbs[0]);
  for (std::size_t i = 0; i < windows.size(); ++i)
    json.metric("get_window_" + std::to_string(windows[i]) + "_mbs",
                get_win_mbs[i]);
  json.metric("get_window_best_vs_w1", best_get_windowed / get_win_mbs[0]);
  json.metric("put_4mb_mbs", s_put4_mbs);
  json.metric("get_4mb_mbs", s_get4_mbs);
  json.metric("get_vs_put_4mb", get_vs_put);
  json.metric("replies_staged", st_replies_staged);
  json.metric("reply_pool_hits", st_reply_pool_hits);
  json.metric("reply_fallbacks", st_reply_fallbacks);
  json.metric("window_grow", st_window_grow);
  json.metric("window_shrink", st_window_shrink);
  if (crossover)
    json.metric("put_crossover_bytes", static_cast<double>(crossover));
  json.write();
  return checks.summary("abl_am_protocol");
}
