// Fig 8 reproduction: strong scaling of the extend-add operation.
//
// Paper setup (§IV-D-3): audikw_1 frontal tree and distribution extracted
// from STRUMPACK; three variants — UPC++ RPC (views), MPI Alltoallv
// (STRUMPACK's strategy), MPI P2P (MUMPS's strategy); no computation beyond
// accumulation; mean of 10 runs per point; identical computation and data
// volume across variants.
//
// Substitution (DESIGN.md): the audikw_1 tree is modeled by the synthetic
// 3-D nested-dissection generator at audikw_1-like scale (~1e6 vertices);
// shape claims checked: UPC++ RPC maintains a consistent advantage over
// both MPI variants, largest at scale (paper: up to 1.63x vs Alltoallv,
// 3.11x vs P2P at 2048 cores).
#include <cstdio>
#include <map>
#include <vector>

#include "apps/sparse/eadd.hpp"
#include "arch/timer.hpp"
#include "bench_util.hpp"
#include "minimpi/minimpi.hpp"
#include "upcxx/upcxx.hpp"

int main() {
  sparse::TreeParams params;
  params.levels = benchutil::work_scale() < 1.0 ? 7 : 9;
  params.n_vertices = 943695;  // audikw_1 dimension
  params.sep_coeff = 0.5;
  params.min_sep = 8;
  params.max_front = benchutil::work_scale() < 1.0 ? 512 : 1024;
  params.seed = 20190520;

  const int runs = benchutil::reps(10, 2);
  auto ranks = benchutil::rank_sweep(16);

  std::printf(
      "Fig 8 — Extend-add strong scaling (audikw_1 model tree: %d levels, "
      "%d fronts, max front %d)\nmean of %d runs per point\n\n",
      params.levels, (1 << params.levels) - 1, params.max_front, runs);

  using sparse::EaddVariant;
  const std::vector<EaddVariant> variants{EaddVariant::kMpiAlltoallv,
                                          EaddVariant::kMpiP2p,
                                          EaddVariant::kUpcxxRpc};
  // time[variant][ranks] = seconds (max over ranks, mean over runs).
  static std::map<EaddVariant, std::map<int, double>> times;

  for (int P : ranks) {
    gex::Config cfg = gex::Config::from_env();
    cfg.ranks = P;
    cfg.ring_bytes = 4 << 20;  // extend-add bursts are heavy
    cfg.heap_bytes = 256 << 20;
    int fails = upcxx::run(cfg, [&] {
      minimpi::init();
      auto tree = sparse::FrontalTree::synthetic(params, upcxx::rank_n());
      sparse::EaddBench bench(tree, /*block=*/32);
      bench.setup();
      for (auto v : variants) {
        double total = 0;
        for (int r = 0; r < runs; ++r) {
          bench.reset_values();
          double mine = bench.run(v);
          total +=
              upcxx::reduce_all(mine, upcxx::op_fast_max{}).wait();
        }
        if (upcxx::rank_me() == 0)
          times[v][upcxx::rank_n()] = total / runs;
        upcxx::barrier();
      }
      minimpi::finalize();
    });
    if (fails) return 2;
  }

  std::printf("%8s %16s %16s %16s %12s %12s\n", "procs", "MPI Alltoallv(s)",
              "MPI P2P(s)", "UPC++ RPC(s)", "A2A/UPC++", "P2P/UPC++");
  for (int P : ranks) {
    const double a2a = times[EaddVariant::kMpiAlltoallv][P];
    const double p2p = times[EaddVariant::kMpiP2p][P];
    const double rpc = times[EaddVariant::kUpcxxRpc][P];
    std::printf("%8d %16.4f %16.4f %16.4f %11.2fx %11.2fx\n", P, a2a, p2p,
                rpc, a2a / rpc, p2p / rpc);
  }

  benchutil::ShapeChecks checks;
  std::printf(
      "\nPaper: UPC++ RPC maintains a consistent advantage over both MPI "
      "variants (up to 1.63x vs Alltoallv, 3.11x vs P2P at scale).\n");
  const int pmax = ranks.back();
  const double rpc = times[EaddVariant::kUpcxxRpc][pmax];
  checks.expect(times[EaddVariant::kMpiAlltoallv][pmax] >= rpc * 0.95,
                "UPC++ RPC >= MPI Alltoallv at the largest rank count");
  checks.expect(times[EaddVariant::kMpiP2p][pmax] >= rpc * 0.95,
                "UPC++ RPC >= MPI P2P at the largest rank count");
  if (ranks.size() >= 2) {
    // Strong scaling: more ranks should not slow the UPC++ variant down
    // drastically (paper shows robust scaling to 2048 cores).
    const double t1 = times[EaddVariant::kUpcxxRpc][ranks.front()];
    checks.expect(rpc <= t1 * 1.5,
                  "UPC++ extend-add does not degrade with rank count");
  }
  char buf[128];
  std::snprintf(buf, sizeof buf,
                "speedups at P=%d: %.2fx vs Alltoallv, %.2fx vs P2P", pmax,
                times[EaddVariant::kMpiAlltoallv][pmax] / rpc,
                times[EaddVariant::kMpiP2p][pmax] / rpc);
  checks.note(buf);
  return checks.summary("fig8_eadd_strong_scaling");
}
