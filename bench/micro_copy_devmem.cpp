// Micro — memory-kinds copy (paper §VI future work: transfers to and from
// device memories). Measures upcxx::copy bandwidth for every endpoint-kind
// pair on one rank and across two ranks, first on the raw shared-memory
// substrate (cost model off) and then under an Aries+PCIe-like cost model to
// show the staged-vs-direct shape the real memory-kinds feature targets:
// a host-staged device-to-device path pays two DMA tolls where a direct
// copy pays one.
#include <cstdio>
#include <numeric>
#include <vector>

#include "arch/timer.hpp"
#include "bench_util.hpp"
#include "upcxx/upcxx.hpp"

namespace {

using upcxx::memory_kind;
using dev_alloc = upcxx::device_allocator<upcxx::sim_device>;
template <typename T>
using dev_ptr = upcxx::global_ptr<T, memory_kind::sim_device>;

constexpr std::size_t kBufElems = 1 << 16;  // 512 KiB of doubles

struct Row {
  const char* label;
  double gbps;
};

double time_copies_gbps(const std::function<upcxx::future<>()>& one,
                        std::size_t bytes, int reps) {
  // Warm up, then time `reps` blocking copies.
  one().wait();
  const double t0 = arch::now_s();
  for (int i = 0; i < reps; ++i) one().wait();
  const double dt = arch::now_s() - t0;
  return static_cast<double>(bytes) * reps / dt / 1e9;
}

}  // namespace

int main() {
  std::printf("Micro — upcxx::copy across memory kinds (1-2 ranks)\n\n");
  benchutil::ShapeChecks checks;
  const int reps = benchutil::reps(200, 10);
  const std::size_t bytes = kBufElems * sizeof(double);

  // ---------------------------------------------- single rank, no cost model
  upcxx::run(1, [&] {
    upcxx::experimental::set_sim_device_params(0, 0.0);
    dev_alloc dev(16 << 20);
    auto d1 = dev.allocate<double>(kBufElems);
    auto d2 = dev.allocate<double>(kBufElems);
    auto h1 = upcxx::new_array<double>(kBufElems);
    std::vector<double> priv(kBufElems);
    std::iota(priv.begin(), priv.end(), 0.0);

    std::vector<Row> rows = {
        {"private->host   (rput path)",
         time_copies_gbps([&] { return upcxx::copy(priv.data(), h1,
                                                   kBufElems); },
                          bytes, reps)},
        {"private->device (h2d)",
         time_copies_gbps([&] { return upcxx::copy(priv.data(), d1,
                                                   kBufElems); },
                          bytes, reps)},
        {"device->private (d2h)",
         time_copies_gbps([&] { return upcxx::copy(d1, priv.data(),
                                                   kBufElems); },
                          bytes, reps)},
        {"device->device  (d2d)",
         time_copies_gbps([&] { return upcxx::copy(d1, d2, kBufElems); },
                          bytes, reps)},
        {"host->device    (g2g mixed)",
         time_copies_gbps([&] { return upcxx::copy(h1, d1, kBufElems); },
                          bytes, reps)},
    };
    std::printf("-- one rank, cost model off (%s buffers) --\n",
                benchutil::human_size(bytes).c_str());
    for (const auto& r : rows) std::printf("  %-28s %8.2f GB/s\n", r.label,
                                           r.gbps);
    // On the raw substrate every kind pair is a memcpy: within 4x of each
    // other (generous; covers cache effects).
    double lo = rows[0].gbps, hi = rows[0].gbps;
    for (const auto& r : rows) {
      lo = std::min(lo, r.gbps);
      hi = std::max(hi, r.gbps);
    }
    checks.expect(hi / lo < 4.0,
                  "cost model off: all kind pairs within 4x (memcpy wire)");
    upcxx::delete_array(h1, kBufElems);
  });

  // ----------------------------------- single rank, PCIe-like cost model on
  upcxx::run(1, [&] {
    // ~12 GB/s PCIe-gen3-ish, 2 us per-transfer latency.
    upcxx::experimental::set_sim_device_params(2'000, 12.0);
    dev_alloc dev(16 << 20);
    auto d1 = dev.allocate<double>(kBufElems);
    auto d2 = dev.allocate<double>(kBufElems);
    std::vector<double> priv(kBufElems, 1.0);

    const double h2d = time_copies_gbps(
        [&] { return upcxx::copy(priv.data(), d1, kBufElems); }, bytes,
        benchutil::reps(50, 12));
    const double d2d_direct = time_copies_gbps(
        [&] { return upcxx::copy(d1, d2, kBufElems); }, bytes,
        benchutil::reps(50, 12));
    // Staged d2d: device -> private host buffer -> device (two copies, the
    // pattern applications use without direct device-device support).
    const double d2d_staged = time_copies_gbps(
        [&] {
          return upcxx::copy(d1, priv.data(), kBufElems)
              .then([&] { return upcxx::copy(priv.data(), d2, kBufElems); });
        },
        bytes, benchutil::reps(50, 12));

    std::printf("\n-- one rank, PCIe-like cost model (12 GB/s, 2us) --\n");
    std::printf("  %-28s %8.2f GB/s\n", "h2d", h2d);
    std::printf("  %-28s %8.2f GB/s\n", "d2d direct", d2d_direct);
    std::printf("  %-28s %8.2f GB/s\n", "d2d staged via host", d2d_staged);
    checks.expect(h2d < 13.0, "h2d bandwidth capped by simulated PCIe");
    checks.expect(d2d_direct > h2d * 0.6,
                  "direct d2d is a single DMA (comparable to h2d)");
    checks.expect(d2d_staged < d2d_direct * 0.7,
                  "staging through host pays two DMAs (slower than direct)");
    upcxx::experimental::set_sim_device_params(0, 0.0);
  });

  // ------------------- single rank, async device copies through the engine
  // Device copies at or above UPCXX_RMA_ASYNC_MIN ride the XferEngine with
  // the simulated-PCIe toll gating *landing* instead of being charged at
  // injection, so independently issued DMAs overlap: N promise-tracked
  // copies pay roughly one toll of wall-clock wait, while N blocking
  // copies serialize all N tolls.
  upcxx::run(1, [&] {
    upcxx::experimental::set_sim_device_params(2'000, 12.0);
    dev_alloc dev(16 << 20);
    auto d1 = dev.allocate<double>(kBufElems);
    auto d2 = dev.allocate<double>(kBufElems);
    constexpr int kOps = 8;
    // Warm both paths.
    upcxx::copy(d1, d2, kBufElems).wait();

    double t0 = arch::now_s();
    for (int i = 0; i < kOps; ++i) upcxx::copy(d1, d2, kBufElems).wait();
    const double blocking_s = arch::now_s() - t0;

    upcxx::promise<> p;
    t0 = arch::now_s();
    for (int i = 0; i < kOps; ++i)
      upcxx::copy(d1, d2, kBufElems, upcxx::operation_cx::as_promise(p));
    p.finalize().wait();
    const double async_s = arch::now_s() - t0;

    const double vol_gb = static_cast<double>(bytes) * kOps / 1e9;
    std::printf("\n-- one rank, async engine + PCIe model (%d x %s d2d) --\n",
                kOps, benchutil::human_size(bytes).c_str());
    std::printf("  %-28s %8.2f GB/s effective\n", "blocking (toll per copy)",
                vol_gb / blocking_s);
    std::printf("  %-28s %8.2f GB/s effective\n",
                "async (tolls overlap)", vol_gb / async_s);
    std::printf("  pipelining speedup: %.2fx\n", blocking_s / async_s);
    checks.expect(blocking_s / async_s > 1.15,
                  "overlapped device copies beat blocking issue (PCIe "
                  "tolls pipeline through the engine)");
    upcxx::experimental::set_sim_device_params(0, 0.0);
  });

  // ------------------------------------------------- two ranks, remote push
  upcxx::run(2, [&] {
    upcxx::experimental::set_sim_device_params(0, 0.0);
    dev_alloc dev(16 << 20);
    static dev_ptr<double> remote_d;
    static upcxx::global_ptr<double> remote_h;
    if (upcxx::rank_me() == 1) {
      auto d = dev.allocate<double>(kBufElems);
      auto h = upcxx::new_array<double>(kBufElems);
      upcxx::rpc(0,
                 [](dev_ptr<double> dp, upcxx::global_ptr<double> hp) {
                   remote_d = dp;
                   remote_h = hp;
                 },
                 d, h)
          .wait();
      upcxx::barrier();  // rank 0 measures
      upcxx::barrier();
    } else {
      upcxx::barrier();
      std::vector<double> priv(kBufElems, 2.0);
      const double push_host = time_copies_gbps(
          [&] { return upcxx::copy(priv.data(), remote_h, kBufElems); },
          bytes, reps);
      const double push_dev = time_copies_gbps(
          [&] { return upcxx::copy(priv.data(), remote_d, kBufElems); },
          bytes, reps);
      std::printf("\n-- two ranks, cost model off --\n");
      std::printf("  %-28s %8.2f GB/s\n", "push to remote host", push_host);
      std::printf("  %-28s %8.2f GB/s\n", "push to remote device", push_dev);
      checks.expect(push_dev > push_host / 4.0,
                    "remote device push within 4x of remote host push");
      upcxx::barrier();
    }
    upcxx::barrier();
  });

  return checks.summary("micro_copy_devmem");
}
