// Ablation: multi-threaded op injection (upcxx/inject.hpp) — the PR's
// scaling claim, made measurable.
//
// Series 1 — direct-wire rput injection: T ∈ {1,2,4} injector threads on
// rank 0 each issue small (64B) synchronous rputs at the peer's segment.
// Below rma_async_min on the direct wire every op completes caller-side
// (memcpy + completion hooks, no master round-trip, no lock), so
// aggregate throughput should scale near-linearly with threads. The
// enforced shape check is the PR's acceptance bar: >= 3x aggregate ops/s
// at T=4 vs T=1, on hosts with >= 4 hardware threads.
//
// Series 2 — rpc_ff pipeline: T injector threads enqueue fire-and-forget
// rpcs (serialized caller-side into the MPSC wire shards), the master
// drains the shards onto the wire, the peer executes. End-to-end
// throughput is master-bound by design, so this series is reported, not
// enforced — it documents that the hand-off does not collapse under
// producers.
//
// Series 3 — engine-bound progress pool: 32KB rputs over the AM wire,
// above rma_async_min, so every op chunks through the XferEngine (stage
// memcpy + wire put per chunk) and send-side issue is the bottleneck.
// upcxx::progress_pool width 1 vs 2 across T ∈ {1,2,4} injectors: width 2
// adds a helper that runs XferEngine::issue_pass and drains wire shards
// in parallel with worker 0's receive/ack path. The enforced shape check
// is the PR's acceptance bar: >= 1.5x at width 2 vs width 1 (T=4) on
// hosts with >= 4 hardware threads.
//
// Series 4 — mixed rpc + collective: T injectors per rank interleave rpc
// round trips with rank-level barriers on a deterministic schedule — the
// whole op_context surface under concurrency. Reported.
#include <atomic>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "arch/timer.hpp"
#include "bench_util.hpp"
#include "upcxx/upcxx.hpp"

namespace {

constexpr int kSeries[] = {1, 2, 4};
constexpr std::size_t kOpBytes = 64;
// Per-thread slice of the peer segment: each thread owns kSlots slots of
// kOpBytes and cycles through them, so threads never share a cache line.
constexpr std::size_t kSlots = 64;

struct Results {
  double rput_ops_per_s[3] = {0, 0, 0};
  double rpcff_ops_per_s[3] = {0, 0, 0};
  double engine_mb_per_s[2][3] = {{0, 0, 0}, {0, 0, 0}};  // [width-1][T]
  double mixed_ops_per_s[3] = {0, 0, 0};
};
Results g_r;

std::atomic<long> g_ff_executed{0};

void rput_series(int ops_per_thread) {
  const int me = upcxx::rank_me();
  const std::size_t span = 8 * kSlots * kOpBytes;  // max threads * slice
  auto seg = upcxx::allocate<char>(span);
  upcxx::dist_object<upcxx::global_ptr<char>> dir(seg);
  auto peer = dir.fetch(1 - me).wait();

  for (int si = 0; si < 3; ++si) {
    const int T = kSeries[si];
    upcxx::barrier();
    if (me == 0) {
      upcxx::injector inj;
      std::vector<std::thread> ts;
      const double t0 = arch::now_s();
      for (int t = 0; t < T; ++t)
        ts.emplace_back([&, t] {
          upcxx::injection_scope scope(inj);
          char src[kOpBytes];
          std::memset(src, 'a' + t, sizeof src);
          auto base = peer + static_cast<std::ptrdiff_t>(t * kSlots *
                                                         kOpBytes);
          for (int i = 0; i < ops_per_thread; ++i)
            upcxx::rput(src,
                        base + static_cast<std::ptrdiff_t>(
                                   (i % kSlots) * kOpBytes),
                        kOpBytes)
                .wait();
        });
      for (auto& th : ts) th.join();
      const double dt = arch::now_s() - t0;
      g_r.rput_ops_per_s[si] = static_cast<double>(T) * ops_per_thread / dt;
    }
    upcxx::barrier();
  }
  upcxx::deallocate(seg);
}

void rpcff_series(int ops_per_thread) {
  const int me = upcxx::rank_me();
  for (int si = 0; si < 3; ++si) {
    const int T = kSeries[si];
    g_ff_executed = 0;
    upcxx::barrier();
    const long total = static_cast<long>(T) * ops_per_thread;
    if (me == 0) {
      upcxx::injector inj;
      std::atomic<int> alive{T};
      std::vector<std::thread> ts;
      const double t0 = arch::now_s();
      for (int t = 0; t < T; ++t)
        ts.emplace_back([&] {
          upcxx::injection_scope scope(inj);
          for (int i = 0; i < ops_per_thread; ++i)
            upcxx::rpc_ff(1, [] { g_ff_executed.fetch_add(1); });
          alive.fetch_sub(1, std::memory_order_release);
        });
      // Master: flush the wire shards and wait until the peer ran it all
      // (thread backend: the counter is process-shared).
      while (alive.load(std::memory_order_acquire) != 0 ||
             g_ff_executed.load() < total)
        upcxx::progress();
      const double dt = arch::now_s() - t0;
      g_r.rpcff_ops_per_s[si] = static_cast<double>(total) / dt;
      for (auto& th : ts) th.join();
    } else {
      // Peer: serve requests until rank 0 is done with this series.
      while (g_ff_executed.load() < total) upcxx::progress();
    }
    upcxx::barrier();
  }
}

// 32KB ops, above the run's rma_async_min: every rput chunks through the
// XferEngine, so throughput measures send-side chunk issue. Each thread
// owns one 32KB slot on the peer.
constexpr std::size_t kBigOp = 32 << 10;

void engine_series(int ops_per_thread) {
  const int me = upcxx::rank_me();
  constexpr int kMaxT = 4;
  auto seg = upcxx::allocate<char>(kMaxT * kBigOp);
  upcxx::dist_object<upcxx::global_ptr<char>> dir(seg);
  auto peer = dir.fetch(1 - me).wait();
  std::vector<char> src(kBigOp, 'e');

  for (int wi = 0; wi < 2; ++wi) {
    const int width = wi + 1;
    for (int si = 0; si < 3; ++si) {
      const int T = kSeries[si];
      upcxx::barrier();
      if (me == 0) {
        upcxx::injector inj;
        upcxx::progress_pool pool(width);
        std::vector<std::thread> ts;
        const double t0 = arch::now_s();
        for (int t = 0; t < T; ++t)
          ts.emplace_back([&, t] {
            upcxx::injection_scope scope(inj);
            auto slot = peer + static_cast<std::ptrdiff_t>(t * kBigOp);
            for (int i = 0; i < ops_per_thread; ++i)
              upcxx::rput(src.data(), slot, kBigOp).wait();
          });
        for (auto& th : ts) th.join();
        const double dt = arch::now_s() - t0;
        pool.stop();
        g_r.engine_mb_per_s[wi][si] =
            static_cast<double>(T) * ops_per_thread *
            static_cast<double>(kBigOp) / dt / (1 << 20);
      }
      upcxx::barrier();
    }
  }
  upcxx::deallocate(seg);
}

void mixed_series(int ops_per_thread) {
  const int me = upcxx::rank_me();
  for (int si = 0; si < 3; ++si) {
    const int T = kSeries[si];
    upcxx::barrier();
    upcxx::injector inj;
    std::atomic<int> alive{T};
    std::vector<std::thread> ts;
    const double t0 = arch::now_s();
    // Both ranks run the same schedule: the barrier entry counts must
    // match, and the rpcs cross in both directions. rank_me() reads gex
    // TLS that injector threads don't carry — capture the peer up front.
    const int peer = 1 - me;
    for (int t = 0; t < T; ++t)
      ts.emplace_back([&] {
        upcxx::injection_scope scope(inj);
        for (int i = 0; i < ops_per_thread; ++i) {
          const int r = upcxx::rpc(peer, [](int x) { return x; }, i).wait();
          (void)r;
          if (i % 8 == 7) upcxx::barrier();
        }
        alive.fetch_sub(1, std::memory_order_release);
      });
    while (alive.load(std::memory_order_acquire) != 0) upcxx::progress();
    for (auto& th : ts) th.join();
    const double dt = arch::now_s() - t0;
    if (me == 0)
      g_r.mixed_ops_per_s[si] = static_cast<double>(T) *
                                (ops_per_thread + ops_per_thread / 8) / dt;
    upcxx::barrier();
  }
}

}  // namespace

int main() {
  const int rput_ops = static_cast<int>(40000 * benchutil::work_scale());
  const int ff_ops = static_cast<int>(8000 * benchutil::work_scale());
  const int engine_ops = static_cast<int>(400 * benchutil::work_scale());
  const int mixed_ops = static_cast<int>(2000 * benchutil::work_scale());
  const bool quick = benchutil::reps(2, 1) == 1;
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf(
      "ABL — multi-threaded injection (2 ranks, %u hardware threads)\n"
      "64B ops, threads own disjoint peer slices; sync fast path / MPSC "
      "hand-off\n\n",
      hw);

  gex::Config cfg = gex::Config::from_env();
  cfg.ranks = 2;
  cfg.sim_bw_gbps = 0;
  cfg.sim_latency_ns = 0;
  if (upcxx::run(cfg, [rput_ops, ff_ops, mixed_ops] {
        rput_series(rput_ops);
        rpcff_series(ff_ops);
        mixed_series(mixed_ops);
      }))
    return 2;

  // Engine-bound run: AM wire, 32KB ops chunked at 4KB through the
  // XferEngine so the pool's parallel chunk issue has work to split.
  gex::Config am_cfg = cfg;
  am_cfg.rma_wire = gex::RmaWire::kAm;
  am_cfg.rma_async_min = 4096;
  am_cfg.xfer_chunk_bytes = 4096;
  if (upcxx::run(am_cfg, [engine_ops] { engine_series(engine_ops); }))
    return 2;

  benchutil::JsonReport json("abl_mt");
  std::printf("direct-wire rput injection (sync fast path):\n");
  for (int si = 0; si < 3; ++si) {
    std::printf("  T=%d  %12.0f ops/s\n", kSeries[si],
                g_r.rput_ops_per_s[si]);
    json.metric("inject_rput_ops_per_s_t" + std::to_string(kSeries[si]),
                g_r.rput_ops_per_s[si]);
  }
  const double scale4 = g_r.rput_ops_per_s[2] / g_r.rput_ops_per_s[0];
  std::printf("  scaling at T=4: %.2fx\n\n", scale4);
  json.metric("inject_rput_scaling_t4", scale4);

  std::printf("rpc_ff pipeline (MPSC shards -> master -> peer):\n");
  for (int si = 0; si < 3; ++si) {
    std::printf("  T=%d  %12.0f ops/s\n", kSeries[si],
                g_r.rpcff_ops_per_s[si]);
    json.metric("inject_rpcff_ops_per_s_t" + std::to_string(kSeries[si]),
                g_r.rpcff_ops_per_s[si]);
  }

  std::printf("\nmixed rpc + collective injection (rpc round trips, "
              "barrier every 8):\n");
  for (int si = 0; si < 3; ++si) {
    std::printf("  T=%d  %12.0f ops/s\n", kSeries[si],
                g_r.mixed_ops_per_s[si]);
    json.metric("mixed_ops_per_s_t" + std::to_string(kSeries[si]),
                g_r.mixed_ops_per_s[si]);
  }

  std::printf("\nengine-bound rput (AM wire, 32KB ops, 4KB chunks), "
              "pool width 1 vs 2:\n");
  for (int wi = 0; wi < 2; ++wi)
    for (int si = 0; si < 3; ++si) {
      std::printf("  width=%d T=%d  %10.1f MB/s\n", wi + 1, kSeries[si],
                  g_r.engine_mb_per_s[wi][si]);
      json.metric("engine_mb_per_s_w" + std::to_string(wi + 1) + "_t" +
                      std::to_string(kSeries[si]),
                  g_r.engine_mb_per_s[wi][si]);
    }
  const double pool_gain = g_r.engine_mb_per_s[1][2] /
                           (g_r.engine_mb_per_s[0][2] > 0
                                ? g_r.engine_mb_per_s[0][2]
                                : 1.0);
  std::printf("  width-2 gain at T=4: %.2fx\n", pool_gain);
  json.metric("engine_pool_gain_t4", pool_gain);
  json.write();

  benchutil::ShapeChecks checks;
  if (!quick && hw >= 4 && !benchutil::under_tsan()) {
    checks.expect(scale4 >= 3.0,
                  "direct-wire injection throughput scales >= 3x from 1 to "
                  "4 app threads");
    checks.expect(pool_gain >= 1.5,
                  "engine-bound throughput gains >= 1.5x from a width-2 "
                  "progress pool (parallel chunk issue)");
  } else {
    checks.note("smoke host (<4 hw threads, BENCH_QUICK, or TSan): T=4 "
                "scaling " + std::to_string(scale4) +
                "x and pool gain " + std::to_string(pool_gain) +
                "x reported, not enforced");
  }
  checks.expect(g_r.rpcff_ops_per_s[2] > 0 && g_r.mixed_ops_per_s[2] > 0 &&
                    g_r.engine_mb_per_s[1][2] > 0,
                "threaded rpc_ff, mixed, and engine-bound series completed");
  return checks.summary("abl_mt");
}
