// Ablation: multi-threaded op injection (upcxx/inject.hpp) — the PR's
// scaling claim, made measurable.
//
// Series 1 — direct-wire rput injection: T ∈ {1,2,4} injector threads on
// rank 0 each issue small (64B) synchronous rputs at the peer's segment.
// Below rma_async_min on the direct wire every op completes caller-side
// (memcpy + completion hooks, no master round-trip, no lock), so
// aggregate throughput should scale near-linearly with threads. The
// enforced shape check is the PR's acceptance bar: >= 3x aggregate ops/s
// at T=4 vs T=1, on hosts with >= 4 hardware threads.
//
// Series 2 — rpc_ff pipeline: T injector threads enqueue fire-and-forget
// rpcs (serialized caller-side into the MPSC wire shards), the master
// drains the shards onto the wire, the peer executes. End-to-end
// throughput is master-bound by design, so this series is reported, not
// enforced — it documents that the hand-off does not collapse under
// producers.
//
// Series 3 — progress pool: the same 4-thread rput workload over the AM
// wire (every op is engine-bound, so send-side drain is the bottleneck),
// with upcxx::progress_pool width 1 vs 2: width 2 adds an injection
// helper that drains wire shards alongside the master. Reported.
#include <atomic>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "arch/timer.hpp"
#include "bench_util.hpp"
#include "upcxx/upcxx.hpp"

namespace {

constexpr int kSeries[] = {1, 2, 4};
constexpr std::size_t kOpBytes = 64;
// Per-thread slice of the peer segment: each thread owns kSlots slots of
// kOpBytes and cycles through them, so threads never share a cache line.
constexpr std::size_t kSlots = 64;

struct Results {
  double rput_ops_per_s[3] = {0, 0, 0};
  double rpcff_ops_per_s[3] = {0, 0, 0};
  double pool_ops_per_s[2] = {0, 0};
};
Results g_r;

std::atomic<long> g_ff_executed{0};

void rput_series(int ops_per_thread) {
  const int me = upcxx::rank_me();
  const std::size_t span = 8 * kSlots * kOpBytes;  // max threads * slice
  auto seg = upcxx::allocate<char>(span);
  upcxx::dist_object<upcxx::global_ptr<char>> dir(seg);
  auto peer = dir.fetch(1 - me).wait();

  for (int si = 0; si < 3; ++si) {
    const int T = kSeries[si];
    upcxx::barrier();
    if (me == 0) {
      upcxx::injector inj;
      std::vector<std::thread> ts;
      const double t0 = arch::now_s();
      for (int t = 0; t < T; ++t)
        ts.emplace_back([&, t] {
          upcxx::injection_scope scope(inj);
          char src[kOpBytes];
          std::memset(src, 'a' + t, sizeof src);
          auto base = peer + static_cast<std::ptrdiff_t>(t * kSlots *
                                                         kOpBytes);
          for (int i = 0; i < ops_per_thread; ++i)
            upcxx::rput(src,
                        base + static_cast<std::ptrdiff_t>(
                                   (i % kSlots) * kOpBytes),
                        kOpBytes)
                .wait();
        });
      for (auto& th : ts) th.join();
      const double dt = arch::now_s() - t0;
      g_r.rput_ops_per_s[si] = static_cast<double>(T) * ops_per_thread / dt;
    }
    upcxx::barrier();
  }
  upcxx::deallocate(seg);
}

void rpcff_series(int ops_per_thread) {
  const int me = upcxx::rank_me();
  for (int si = 0; si < 3; ++si) {
    const int T = kSeries[si];
    g_ff_executed = 0;
    upcxx::barrier();
    const long total = static_cast<long>(T) * ops_per_thread;
    if (me == 0) {
      upcxx::injector inj;
      std::atomic<int> alive{T};
      std::vector<std::thread> ts;
      const double t0 = arch::now_s();
      for (int t = 0; t < T; ++t)
        ts.emplace_back([&] {
          upcxx::injection_scope scope(inj);
          for (int i = 0; i < ops_per_thread; ++i)
            upcxx::rpc_ff(1, [] { g_ff_executed.fetch_add(1); });
          alive.fetch_sub(1, std::memory_order_release);
        });
      // Master: flush the wire shards and wait until the peer ran it all
      // (thread backend: the counter is process-shared).
      while (alive.load(std::memory_order_acquire) != 0 ||
             g_ff_executed.load() < total)
        upcxx::progress();
      const double dt = arch::now_s() - t0;
      g_r.rpcff_ops_per_s[si] = static_cast<double>(total) / dt;
      for (auto& th : ts) th.join();
    } else {
      // Peer: serve requests until rank 0 is done with this series.
      while (g_ff_executed.load() < total) upcxx::progress();
    }
    upcxx::barrier();
  }
}

void pool_series(int ops_per_thread) {
  const int me = upcxx::rank_me();
  constexpr int T = 4;
  const std::size_t span = T * kSlots * kOpBytes;
  auto seg = upcxx::allocate<char>(span);
  upcxx::dist_object<upcxx::global_ptr<char>> dir(seg);
  auto peer = dir.fetch(1 - me).wait();

  for (int wi = 0; wi < 2; ++wi) {
    const int width = wi + 1;
    upcxx::barrier();
    if (me == 0) {
      upcxx::injector inj;
      upcxx::progress_pool pool(width);
      std::vector<std::thread> ts;
      const double t0 = arch::now_s();
      for (int t = 0; t < T; ++t)
        ts.emplace_back([&, t] {
          upcxx::injection_scope scope(inj);
          char src[kOpBytes];
          std::memset(src, 'p', sizeof src);
          auto base = peer + static_cast<std::ptrdiff_t>(t * kSlots *
                                                         kOpBytes);
          for (int i = 0; i < ops_per_thread; ++i)
            upcxx::rput(src,
                        base + static_cast<std::ptrdiff_t>(
                                   (i % kSlots) * kOpBytes),
                        kOpBytes)
                .wait();
        });
      for (auto& th : ts) th.join();
      const double dt = arch::now_s() - t0;
      pool.stop();
      g_r.pool_ops_per_s[wi] = static_cast<double>(T) * ops_per_thread / dt;
    }
    upcxx::barrier();
  }
  upcxx::deallocate(seg);
}

}  // namespace

int main() {
  const int rput_ops = static_cast<int>(40000 * benchutil::work_scale());
  const int ff_ops = static_cast<int>(8000 * benchutil::work_scale());
  const int pool_ops = static_cast<int>(2000 * benchutil::work_scale());
  const bool quick = benchutil::reps(2, 1) == 1;
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf(
      "ABL — multi-threaded injection (2 ranks, %u hardware threads)\n"
      "64B ops, threads own disjoint peer slices; sync fast path / MPSC "
      "hand-off\n\n",
      hw);

  gex::Config cfg = gex::Config::from_env();
  cfg.ranks = 2;
  cfg.sim_bw_gbps = 0;
  cfg.sim_latency_ns = 0;
  if (upcxx::run(cfg, [rput_ops, ff_ops] {
        rput_series(rput_ops);
        rpcff_series(ff_ops);
      }))
    return 2;

  gex::Config am_cfg = cfg;
  am_cfg.rma_wire = gex::RmaWire::kAm;
  if (upcxx::run(am_cfg, [pool_ops] { pool_series(pool_ops); })) return 2;

  benchutil::JsonReport json("abl_mt");
  std::printf("direct-wire rput injection (sync fast path):\n");
  for (int si = 0; si < 3; ++si) {
    std::printf("  T=%d  %12.0f ops/s\n", kSeries[si],
                g_r.rput_ops_per_s[si]);
    json.metric("inject_rput_ops_per_s_t" + std::to_string(kSeries[si]),
                g_r.rput_ops_per_s[si]);
  }
  const double scale4 = g_r.rput_ops_per_s[2] / g_r.rput_ops_per_s[0];
  std::printf("  scaling at T=4: %.2fx\n\n", scale4);
  json.metric("inject_rput_scaling_t4", scale4);

  std::printf("rpc_ff pipeline (MPSC shards -> master -> peer):\n");
  for (int si = 0; si < 3; ++si) {
    std::printf("  T=%d  %12.0f ops/s\n", kSeries[si],
                g_r.rpcff_ops_per_s[si]);
    json.metric("inject_rpcff_ops_per_s_t" + std::to_string(kSeries[si]),
                g_r.rpcff_ops_per_s[si]);
  }

  std::printf("\nprogress pool, AM wire, 4 injector threads:\n");
  for (int wi = 0; wi < 2; ++wi) {
    std::printf("  width=%d  %12.0f ops/s\n", wi + 1,
                g_r.pool_ops_per_s[wi]);
    json.metric("pool_rput_ops_per_s_w" + std::to_string(wi + 1),
                g_r.pool_ops_per_s[wi]);
  }
  json.write();

  benchutil::ShapeChecks checks;
  if (!quick && hw >= 4 && !benchutil::under_tsan()) {
    checks.expect(scale4 >= 3.0,
                  "direct-wire injection throughput scales >= 3x from 1 to "
                  "4 app threads");
  } else {
    checks.note("smoke host (<4 hw threads, BENCH_QUICK, or TSan): T=4 "
                "scaling " + std::to_string(scale4) +
                "x reported, not enforced");
  }
  checks.expect(g_r.rpcff_ops_per_s[2] > 0 && g_r.pool_ops_per_s[1] > 0,
                "threaded rpc_ff and pooled-progress series completed");
  return checks.summary("abl_mt");
}
