// Shared plumbing for the paper-figure benchmark harnesses: table printing,
// human-readable sizes, rank-count sweeps, and qualitative shape checks
// (benches assert the paper's *shape* claims, never absolute numbers).
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace benchutil {

inline std::string human_size(std::size_t bytes) {
  char buf[32];
  if (bytes >= (1u << 20))
    std::snprintf(buf, sizeof buf, "%zuMB", bytes >> 20);
  else if (bytes >= (1u << 10))
    std::snprintf(buf, sizeof buf, "%zuKB", bytes >> 10);
  else
    std::snprintf(buf, sizeof buf, "%zuB", bytes);
  return buf;
}

// Rank counts to sweep: powers of two up to min(hardware, cap, env
// BENCH_MAX_RANKS).
inline std::vector<int> rank_sweep(int cap = 16) {
  int hw = static_cast<int>(std::thread::hardware_concurrency());
  if (hw <= 0) hw = 8;
  if (const char* e = std::getenv("BENCH_MAX_RANKS")) cap = std::atoi(e);
  const int maxr = std::min(cap, hw);
  std::vector<int> out;
  for (int p = 1; p <= maxr; p <<= 1) out.push_back(p);
  return out;
}

// Repetition count, scalable down for smoke runs via BENCH_QUICK=1.
inline int reps(int full, int quick = 1) {
  if (const char* e = std::getenv("BENCH_QUICK"); e && *e == '1')
    return quick;
  return full;
}

// Scale factor for problem sizes (BENCH_QUICK shrinks work ~4x).
inline double work_scale() {
  if (const char* e = std::getenv("BENCH_QUICK"); e && *e == '1') return 0.25;
  return 1.0;
}

// True when compiled with ThreadSanitizer: its ~10x serialization makes
// performance *shape* assertions meaningless — benches report instead of
// enforce (the TSan CI job is about races, not throughput).
constexpr bool under_tsan() {
#if defined(__SANITIZE_THREAD__)
  return true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
  return true;
#else
  return false;
#endif
#else
  return false;
#endif
}

class ShapeChecks {
 public:
  void expect(bool ok, const std::string& what) {
    std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what.c_str());
    if (!ok) ++failures_;
  }
  // Non-binding observation (reported, never fails the run).
  void note(const std::string& what) {
    std::printf("  [note] %s\n", what.c_str());
  }
  int summary(const char* bench) const {
    if (failures_ == 0) {
      std::printf("== %s: all shape checks passed ==\n", bench);
    } else {
      std::printf("== %s: %d shape check(s) FAILED ==\n", bench, failures_);
    }
    return failures_ == 0 ? 0 : 1;
  }

 private:
  int failures_ = 0;
};

// Median of a sample vector (destructive).
inline double median(std::vector<double>& v) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

inline double minimum(const std::vector<double>& v) {
  return *std::min_element(v.begin(), v.end());
}

// Machine-readable results for tracking the perf trajectory across PRs:
// with BENCH_JSON=1 each bench writes BENCH_<name>.json holding a flat
// metric map. Collect metrics during the run and call write() before exit.
class JsonReport {
 public:
  explicit JsonReport(std::string name) : name_(std::move(name)) {}

  void metric(const std::string& key, double value) {
    metrics_.emplace_back(key, value);
  }

  // No-op unless BENCH_JSON=1. Returns true if a file was written.
  bool write() const {
    const char* e = std::getenv("BENCH_JSON");
    if (!e || *e != '1') return false;
    const std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) return false;
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"metrics\": {",
                 name_.c_str());
    for (std::size_t i = 0; i < metrics_.size(); ++i)
      std::fprintf(f, "%s\n    \"%s\": %.6g", i ? "," : "",
                   metrics_[i].first.c_str(), metrics_[i].second);
    std::fprintf(f, "\n  }\n}\n");
    std::fclose(f);
    std::printf("wrote %s (%zu metrics)\n", path.c_str(), metrics_.size());
    return true;
  }

 private:
  std::string name_;
  std::vector<std::pair<std::string, double>> metrics_;
};

}  // namespace benchutil
