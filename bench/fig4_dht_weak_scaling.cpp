// Fig 4 reproduction: weak scaling of distributed hash table insertion.
//
// Paper setup (§IV-C): each rank inserts a different set of randomly
// generated 8-byte keys; the total volume per rank is constant, so an
// element-size-2KB run executes 4x more iterations than an 8KB run. Inserts
// block (latency-limited). The "serial" point (P=1, dashed in the paper)
// omits all UPC++ calls — pure std::unordered_map — and represents the
// upper bound of the underlying C++ library.
//
// Paper result: an initial drop from serial/1-process to 2 processes
// (serial -> parallel transition), then near-linear weak scaling of
// aggregate throughput. We print aggregate MB/s per rank count for value
// sizes {128 B, 1 KB, 8 KB} and check the shape: the 1->2 dip exists and
// beyond 2 ranks efficiency stays high.
#include <cstdio>
#include <thread>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "apps/dht/dht.hpp"
#include "arch/rng.hpp"
#include "arch/timer.hpp"
#include "bench_util.hpp"

namespace {

std::string make_key(arch::Xoshiro256& rng) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(rng.next()));
  return std::string(buf, 16);
}

// Pure-STL baseline: what the C++ standard library alone achieves.
double serial_rate(std::size_t value_len, std::size_t volume) {
  arch::Xoshiro256 rng(1);
  std::unordered_map<std::string, std::string> map;
  const std::string value(value_len, 'v');
  const int iters = static_cast<int>(volume / value_len);
  const double t0 = arch::now_s();
  for (int i = 0; i < iters; ++i) map.insert_or_assign(make_key(rng), value);
  return static_cast<double>(volume) / (arch::now_s() - t0);
}

}  // namespace

int main() {
  const std::size_t volume_per_rank =
      static_cast<std::size_t>((4 << 20) * benchutil::work_scale());
  const std::vector<std::size_t> value_sizes{128, 1024, 8192};
  auto ranks = benchutil::rank_sweep(32);

  std::printf(
      "Fig 4 — Weak scaling of distributed hash table insertion\n"
      "constant %zu MB inserted per rank, blocking inserts, RPC+RMA "
      "variant\n\n",
      volume_per_rank >> 20);

  // results[value_size][ranks] = aggregate MB/s.
  static std::map<std::size_t, std::map<int, double>> results;
  static std::map<std::size_t, double> serial;

  for (std::size_t vs : value_sizes) serial[vs] = serial_rate(vs, volume_per_rank);

  for (int P : ranks) {
    for (std::size_t vs : value_sizes) {
      gex::Config cfg = gex::Config::from_env();
      cfg.ranks = P;
      // Landing zones live in shared segments: size for the inserted volume
      // plus slack for allocator metadata.
      cfg.segment_bytes =
          std::max<std::size_t>(volume_per_rank * 2 + (8 << 20), 32 << 20);
      int fails = upcxx::run(cfg, [vs, volume_per_rank] {
        dht::RpcRmaMap map;
        upcxx::barrier();
        arch::Xoshiro256 rng(1000 + upcxx::rank_me());
        const std::string value(vs, 'v');
        const int iters = static_cast<int>(volume_per_rank / vs);
        upcxx::barrier();
        const double t0 = arch::now_s();
        for (int i = 0; i < iters; ++i) {
          // Paper: "the benchmark blocks after each insertion".
          map.insert(make_key(rng), value).wait();
        }
        upcxx::barrier();
        const double dt = arch::now_s() - t0;
        auto agg = upcxx::reduce_one(
                       static_cast<double>(volume_per_rank) / dt,
                       upcxx::op_fast_add{}, 0)
                       .wait();
        if (upcxx::rank_me() == 0)
          results[vs][upcxx::rank_n()] = agg / 1e6;
        upcxx::barrier();
      });
      if (fails) return 2;
    }
  }

  std::printf("%8s", "ranks");
  for (std::size_t vs : value_sizes)
    std::printf(" %13s", (benchutil::human_size(vs) + " MB/s").c_str());
  std::printf("\n%8s", "serial");
  for (std::size_t vs : value_sizes) std::printf(" %13.1f", serial[vs] / 1e6);
  std::printf("   (no UPC++ calls, std::unordered_map only)\n");
  for (int P : ranks) {
    std::printf("%8d", P);
    for (std::size_t vs : value_sizes) std::printf(" %13.1f", results[vs][P]);
    std::printf("\n");
  }

  benchutil::JsonReport json("fig4_dht_weak_scaling");
  for (std::size_t vs : value_sizes) {
    json.metric("serial_" + benchutil::human_size(vs) + "_mbs",
                serial[vs] / 1e6);
    for (int P : ranks)
      json.metric(benchutil::human_size(vs) + "_P" + std::to_string(P) +
                      "_mbs",
                  results[vs][P]);
  }

  benchutil::ShapeChecks checks;
  std::printf(
      "\nPaper: initial decline from serial to parallel operation, then "
      "efficient near-linear weak scaling; larger elements move more "
      "MB/s.\n");
  for (std::size_t vs : value_sizes) {
    auto& r = results[vs];
    checks.expect(r[1] <= serial[vs] / 1e6,
                  benchutil::human_size(vs) +
                      ": 1-rank DHT does not beat the serial STL bound");
    if (ranks.size() >= 3) {
      const int pmax = ranks.back();
      const int pmid = ranks[ranks.size() / 2];
      checks.expect(r[pmax] > r[pmid] * 0.9,
                    benchutil::human_size(vs) +
                        ": aggregate throughput keeps growing (or holds) "
                        "with rank count");
      // Weak-scaling efficiency relative to the 2-rank point.
      if (r.count(2) && r[2] > 0) {
        const double eff = r[pmax] / (r[2] * (pmax / 2.0));
        char buf[128];
        std::snprintf(buf, sizeof buf,
                      "%s: weak-scaling efficiency vs 2 ranks at P=%d is "
                      "%.0f%%",
                      benchutil::human_size(vs).c_str(), pmax, eff * 100);
        checks.note(buf);
      }
    }
  }
  // Larger values should achieve higher MB/s (latency-dominated inserts).
  checks.expect(results[8192][ranks.back()] > results[128][ranks.back()],
                "8KB elements move more MB/s than 128B elements");

  // Aggregated mode (message layer v2): the same insert volume issued as
  // batches over RpcOnlyMap::insert_batch, so the per-target aggregation
  // buffer packs the fine-grained insert RPCs into frames, vs the paper's
  // blocking one-at-a-time inserts over the same map. This is the workload
  // the aggregation layer exists for; the batched path must not lose to the
  // blocking path and typically wins by a wide margin (overlap + framing).
  {
    const int P = 2;  // timeshared fine on small hosts; keeps runs comparable
    constexpr std::size_t vs = 128;
    const std::size_t volume = volume_per_rank / 4;  // latency-bound: smaller
    static double blocking_mbs, batched_mbs;
    gex::Config cfg = gex::Config::from_env();
    cfg.ranks = P;
    const int fails = upcxx::run(cfg, [volume] {
      const int iters = static_cast<int>(volume / vs);
      const std::string value(vs, 'v');
      // Blocking, one RPC round trip per element.
      arch::Xoshiro256 rng(3000 + upcxx::rank_me());
      {
        dht::RpcOnlyMap map;
        upcxx::barrier();
        const double t0 = arch::now_s();
        for (int i = 0; i < iters; ++i)
          map.insert(make_key(rng), value).wait();
        upcxx::barrier();
        if (upcxx::rank_me() == 0)
          blocking_mbs =
              static_cast<double>(volume) * upcxx::rank_n() /
              (arch::now_s() - t0) / 1e6;
      }
      // Batched: windows of 256 inserts riding the aggregated path.
      {
        dht::RpcOnlyMap map;
        upcxx::barrier();
        const double t0 = arch::now_s();
        std::vector<std::pair<std::string, std::string>> window;
        for (int i = 0; i < iters; ++i) {
          window.emplace_back(make_key(rng), value);
          if (window.size() == 256 || i + 1 == iters) {
            map.insert_batch(window).wait();
            window.clear();
          }
        }
        upcxx::barrier();
        if (upcxx::rank_me() == 0)
          batched_mbs =
              static_cast<double>(volume) * upcxx::rank_n() /
              (arch::now_s() - t0) / 1e6;
      }
    });
    if (fails) return 2;
    std::printf(
        "\nAggregated mode (P=%d, 128B values, RpcOnly map):\n"
        "  blocking inserts: %8.1f MB/s aggregate\n"
        "  batched inserts:  %8.1f MB/s aggregate (%.1fx)\n",
        P, blocking_mbs, batched_mbs,
        blocking_mbs > 0 ? batched_mbs / blocking_mbs : 0.0);
    json.metric("agg_blocking_128B_mbs", blocking_mbs);
    json.metric("agg_batched_128B_mbs", batched_mbs);
    checks.expect(batched_mbs >= blocking_mbs,
                  "aggregated batched inserts do not lose to blocking "
                  "inserts");
  }
  json.write();

  // Fig 4b analog: Cori KNL packs 2-4x more (weaker) cores per node than
  // Haswell. We emulate the many-weak-cores regime by running more ranks
  // than the main sweep, capped at physical concurrency — beyond that,
  // spin-waiting ranks steal each other's cycles and the emulation stops
  // being about core strength (blocking inserts + 2x oversubscription
  // collapse for scheduler reasons Cori KNL does not have). The paper's
  // claim — throughput keeps scaling on many weaker cores — maps to "the
  // wider point holds at least half the main sweep's peak aggregate".
  {
    const int hw = ranks.back();
    int hwconc = static_cast<int>(std::thread::hardware_concurrency());
    if (hwconc <= 0) hwconc = hw;
    const int knl_like = std::min(hw * 2, hwconc);
    if (knl_like <= hw) {
      checks.note("hardware too small for a wider KNL-like point; skipped");
      return checks.summary("fig4_dht_weak_scaling");
    }
    constexpr std::size_t vs = 1024;
    gex::Config cfg = gex::Config::from_env();
    cfg.ranks = knl_like;
    cfg.segment_bytes =
        std::max<std::size_t>(volume_per_rank * 2 + (8 << 20), 32 << 20);
    static double knl_rate = 0;
    const int fails = upcxx::run(cfg, [volume_per_rank] {
      dht::RpcRmaMap map;
      upcxx::barrier();
      arch::Xoshiro256 rng(7000 + upcxx::rank_me());
      const std::string value(vs, 'v');
      const int iters = static_cast<int>(volume_per_rank / vs);
      upcxx::barrier();
      const double t0 = arch::now_s();
      for (int i = 0; i < iters; ++i)
        map.insert(make_key(rng), value).wait();
      upcxx::barrier();
      const double dt = arch::now_s() - t0;
      auto agg = upcxx::reduce_one(
                     static_cast<double>(volume_per_rank) / dt,
                     upcxx::op_fast_add{}, 0)
                     .wait();
      if (upcxx::rank_me() == 0) knl_rate = agg / 1e6;
      upcxx::barrier();
    });
    if (fails) return 2;
    std::printf(
        "\nKNL-like (wider, weaker-core analog): %d ranks, 1KB "
        "values: %.1f MB/s aggregate\n",
        knl_like, knl_rate);
    checks.expect(knl_rate > results[vs][hw] * 0.5,
                  "oversubscribed many-weak-cores point holds >=50% of the "
                  "fully-subscribed aggregate (Fig 4b scaling survives "
                  "weak cores)");
  }
  return checks.summary("fig4_dht_weak_scaling");
}
