// Micro-benchmark A5: substrate primitives — AM ping-pong latency, AM
// throughput, ring reserve/commit cost, RPC round-trip overhead decomposed
// against raw AM cost.
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "arch/ring.hpp"
#include "arch/timer.hpp"
#include "bench_util.hpp"
#include "upcxx/upcxx.hpp"

namespace {

std::atomic<long> g_pong{0};
std::atomic<long> g_count{0};

void pong_handler(gex::AmContext& cx) {
  g_pong.fetch_add(1, std::memory_order_relaxed);
}
void count_handler(gex::AmContext& cx) {
  g_count.fetch_add(1, std::memory_order_relaxed);
}
void echo_handler(gex::AmContext& cx) {
  // Reply with an empty AM to the sender.
  cx.engine->send(cx.src, gex::am_handler<&pong_handler>(), nullptr, 0);
}

double am_pingpong_us(int iters) {
  const double t0 = arch::now_s();
  long base = g_pong.load();
  for (int i = 0; i < iters; ++i) {
    gex::am().send(1, gex::am_handler<&echo_handler>(), nullptr, 0);
    // Yield when the poll found nothing: on an oversubscribed host the
    // echoing rank needs the core (matches the RPC path's wait loop).
    while (g_pong.load(std::memory_order_relaxed) <= base + i)
      if (gex::am().poll() == 0) std::this_thread::yield();
  }
  return (arch::now_s() - t0) / iters * 1e6;
}

double am_throughput_mmsgs(int iters, std::size_t payload) {
  std::vector<char> buf(payload);
  const double t0 = arch::now_s();
  for (int i = 0; i < iters; ++i)
    gex::am().send(1, gex::am_handler<&count_handler>(), buf.data(), payload);
  return iters / (arch::now_s() - t0) / 1e6;
}

}  // namespace

int main() {
  std::printf("Micro — substrate AM primitives (2 ranks)\n\n");
  const int iters = static_cast<int>(50000 * benchutil::work_scale()) + 1000;

  // Single-process ring micro first (no SPMD needed).
  {
    std::vector<std::byte> mem(arch::MpscByteRing::footprint(1 << 20));
    auto* ring = arch::MpscByteRing::create(mem.data(), 1 << 20);
    const double t0 = arch::now_s();
    int n = 0;
    for (int i = 0; i < 200000; ++i) {
      auto t = ring->try_reserve(64);
      if (t.payload) {
        arch::MpscByteRing::commit(t);
        ++n;
      }
      ring->try_consume([](void*, std::size_t) {});
    }
    const double dt = arch::now_s() - t0;
    std::printf("ring reserve+commit+consume: %.1f ns/record (%d records)\n",
                dt / n * 1e9, n);
  }

  static double pingpong_us, rpc_us, thr_small, thr_eager_edge;
  gex::Config cfg = gex::Config::from_env();
  cfg.ranks = 2;
  int fails = upcxx::run(cfg, [iters] {
    upcxx::barrier();
    if (upcxx::rank_me() == 0) {
      pingpong_us = am_pingpong_us(iters);
      thr_small = am_throughput_mmsgs(iters, 8);
      thr_eager_edge = am_throughput_mmsgs(iters / 4,
                                           gex::am().eager_max());
      // RPC round trip for comparison (adds serialization + progress
      // engine + future machinery on top of two AMs).
      const double t0 = arch::now_s();
      for (int i = 0; i < iters / 4; ++i)
        upcxx::rpc(1, [](int v) { return v; }, i).wait();
      rpc_us = (arch::now_s() - t0) / (iters / 4) * 1e6;
      // Signal rank 1 that the flood is over (its counters lag).
      upcxx::rpc_ff(1, [] { g_count.store(-1); });
    } else {
      long prev = -2;
      while (g_count.load(std::memory_order_relaxed) != -1) {
        upcxx::progress();
        const long cur = g_count.load(std::memory_order_relaxed);
        if (cur == prev) std::this_thread::yield();
        prev = cur;
      }
    }
    upcxx::barrier();
  });
  if (fails) return 2;

  std::printf("AM ping-pong round trip:     %8.3f us\n", pingpong_us);
  std::printf("RPC round trip (int echo):   %8.3f us\n", rpc_us);
  std::printf("AM throughput (8B):          %8.2f Mmsg/s\n", thr_small);
  std::printf("AM throughput (eager max):   %8.2f Mmsg/s\n", thr_eager_edge);

  benchutil::ShapeChecks checks;
  // The two loops stress slightly different paths (shared-counter
  // ping-pong vs reply-map lookup), so allow generous noise margin.
  checks.expect(rpc_us >= pingpong_us * 0.5,
                "RPC cost is in the same regime as the raw AM round trip");
  checks.expect(rpc_us < pingpong_us * 50,
                "upcxx layer adds bounded overhead over raw AMs (<50x)");
  checks.expect(thr_small > 0.1, "small-message rate above 100 Kmsg/s");
  return checks.summary("micro_am");
}
