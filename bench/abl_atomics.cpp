// Ablation A1 (paper §II + [8]): remote atomics with hardware offload vs
// software (AM) execution.
//
// The paper notes that on capable NICs (Cray Aries) remote atomic updates
// are offloaded, "improving latency and scalability". Our direct backend
// (CPU atomic on the shared arena, no target involvement) is the offload
// analog; the AM backend routes each op through the owner's progress
// engine. A fetch-add hot-spot (every rank hammers rank 0's counter)
// measures the difference.
#include <cstdio>
#include <vector>

#include "arch/timer.hpp"
#include "bench_util.hpp"
#include "upcxx/upcxx.hpp"

int main() {
  std::printf(
      "Ablation — atomic_domain backends on a fetch-add hot spot\n"
      "(direct = NIC-offload analog; am = software path through the "
      "owner)\n\n");
  const int iters = static_cast<int>(20000 * benchutil::work_scale()) + 1000;
  auto ranks = benchutil::rank_sweep(8);
  struct Row {
    int ranks;
    double direct_mops, am_mops;
  };
  static std::vector<Row> rows;

  for (int P : ranks) {
    gex::Config cfg = gex::Config::from_env();
    cfg.ranks = P;
    int fails = upcxx::run(cfg, [iters] {
      auto slot = upcxx::allocate<std::uint64_t>(1);
      *slot.local() = 0;
      upcxx::dist_object<upcxx::global_ptr<std::uint64_t>> dir(slot);
      auto hot = dir.fetch(0).wait();
      double mops[2];
      int k = 0;
      for (auto backend :
           {upcxx::atomic_backend::kDirect, upcxx::atomic_backend::kAm}) {
        upcxx::atomic_domain<std::uint64_t> ad(
            {upcxx::atomic_op::fetch_add, upcxx::atomic_op::load},
            upcxx::world(), backend);
        upcxx::barrier();
        const double t0 = arch::now_s();
        upcxx::promise<> p;
        for (int i = 0; i < iters; ++i) {
          p.require_anonymous(1);
          ad.fetch_add(hot, 1).then(
              [p](std::uint64_t) mutable { p.fulfill_anonymous(1); });
          if (!(i % 32)) upcxx::progress();
        }
        p.finalize().wait();
        upcxx::barrier();
        const double dt = arch::now_s() - t0;
        mops[k++] = iters / dt / 1e6;
        // Verify the counter (linearizability smoke).
        if (upcxx::rank_me() == 0) {
          auto v = ad.load(hot).wait();
          if (v != static_cast<std::uint64_t>(iters) * upcxx::rank_n() *
                       (k == 1 ? 1 : 2))
            std::printf("  WARNING: counter mismatch: %llu\n",
                        static_cast<unsigned long long>(v));
        }
        upcxx::barrier();
      }
      auto d = upcxx::reduce_all(mops[0], upcxx::op_fast_min{}).wait();
      auto a = upcxx::reduce_all(mops[1], upcxx::op_fast_min{}).wait();
      if (upcxx::rank_me() == 0)
        rows.push_back({upcxx::rank_n(), d, a});
      upcxx::barrier();
      upcxx::deallocate(slot);
    });
    if (fails) return 2;
  }

  std::printf("%8s %18s %18s %10s\n", "ranks", "direct (Mops/s/rk)",
              "am (Mops/s/rk)", "direct/am");
  for (auto& r : rows)
    std::printf("%8d %18.2f %18.2f %9.1fx\n", r.ranks, r.direct_mops,
                r.am_mops, r.direct_mops / r.am_mops);

  benchutil::ShapeChecks checks;
  std::printf(
      "\nPaper context: offloaded atomics improve latency and scalability "
      "over software execution at the target.\n");
  checks.expect(rows.back().direct_mops >= rows.back().am_mops,
                "offload-analog backend at least matches the AM backend at "
                "the largest rank count");
  return checks.summary("abl_atomics");
}
