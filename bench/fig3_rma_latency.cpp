// Fig 3a reproduction: round-trip put latency, UPC++ blocking rput vs
// MPI-3 one-sided Put + Win_flush (IMB Unidir_put non-aggregate mode).
//
// Paper setup: two nodes of Cori Haswell, one rank each; blocking rput whose
// completion includes the network-level acknowledgment. Paper result: UPC++
// latency beats MPI RMA — >5% below 256 B, >25% for 256–1024 B, advantage
// persisting through 4 MB. Here both libraries run over the same
// shared-memory substrate, so the measured gap isolates the software-path
// difference (thin PGAS runtime vs general MPI window/epoch machinery).
#include <cstdio>
#include <vector>

#include "arch/timer.hpp"
#include "bench_util.hpp"
#include "minimpi/minimpi.hpp"
#include "upcxx/upcxx.hpp"

namespace {

// One latency sample: seconds per blocking put of `size` bytes.
double upcxx_latency(upcxx::global_ptr<char> dest, const char* src,
                     std::size_t size, int iters) {
  const double t0 = arch::now_s();
  for (int it = 0; it < iters; ++it) {
    // Paper §IV-B: "issue one rput, wait for completion".
    upcxx::rput(src, dest, size).wait();
  }
  return (arch::now_s() - t0) / iters;
}

double mpi_latency(minimpi::Win& win, const char* src, std::size_t size,
                   int iters) {
  const double t0 = arch::now_s();
  for (int it = 0; it < iters; ++it) {
    win.put(src, size, /*target=*/1, /*disp=*/0);
    win.flush(1);  // passive-target synchronization, as in IMB-RMA
  }
  return (arch::now_s() - t0) / iters;
}

}  // namespace

int main() {
  std::printf(
      "Fig 3a — Round-trip Put Latency (lower is better)\n"
      "UPC++ blocking rput vs minimpi Put+Win_flush, 2 ranks, best of "
      "%d-%d interleaved trials\n\n",
      benchutil::reps(10, 3), benchutil::reps(24, 3));
  benchutil::ShapeChecks checks;
  struct Row {
    std::size_t size;
    double upcxx_us, mpi_us;
  };
  static std::vector<Row> rows;

  gex::Config cfg = gex::Config::from_env();
  cfg.ranks = 2;
  // Fig 3a is a native-conduit (direct-wire) comparison; the am wire gets
  // its own pinned series below, so a global UPCXX_RMA_WIRE=am must not
  // flip this section.
  cfg.rma_wire = gex::RmaWire::kDirect;
  int fails = upcxx::run(cfg, [] {
    const int me = upcxx::rank_me();
    constexpr std::size_t kMax = 4 << 20;
    auto seg = upcxx::allocate<char>(kMax);
    upcxx::dist_object<upcxx::global_ptr<char>> dir(seg);
    auto peer = dir.fetch(1 - me).wait();
    // Quiesce upcxx before minimpi::init(): init spins the raw arena
    // barrier, which serves no upcxx progress — a peer whose fetch reply
    // is still pending would deadlock against it.
    upcxx::barrier();
    minimpi::init();
    // The MPI window's exposure buffer lives in the same shared arena the
    // upcxx puts target: both libraries then write identical memory (same
    // mmap region, same page placement) and the measured difference
    // isolates the software path, which is this benchmark's purpose.
    auto exposure = upcxx::allocate<char>(kMax);
    std::vector<char> src(kMax, 'x');
    auto win = minimpi::Win::create(exposure.local(), kMax);

    for (std::size_t size = 8; size <= kMax; size <<= 2) {
      const int iters = size <= 4096 ? 2000 : (size <= 262144 ? 300 : 30);
      // Sub-100ns points need more trials to wash out scheduler placement;
      // order alternates per trial so neither library systematically runs
      // on a warmer cache or a boosted core.
      const int trials = benchutil::reps(size <= 512 ? 24 : 10, 3);
      double best_u = 1e30, best_m = 1e30;
      for (int t = 0; t < trials; ++t) {
        for (int half = 0; half < 2; ++half) {
          const bool upcxx_turn = (half == 0) == (t % 2 == 0);
          if (me == 0) {
            if (upcxx_turn) {
              best_u = std::min(best_u, upcxx_latency(peer, src.data(),
                                                      size, iters));
            } else {
              best_m = std::min(best_m, mpi_latency(win, src.data(), size,
                                                    iters));
            }
          }
          upcxx::barrier();
        }
      }
      if (me == 0)
        rows.push_back({size, best_u * 1e6, best_m * 1e6});
    }
    win.free();
    minimpi::finalize();
    upcxx::barrier();
    upcxx::deallocate(exposure);
    upcxx::deallocate(seg);
  });
  if (fails) return 2;

  // ---- wire=am series ------------------------------------------------------
  // The same blocking-rput sweep with the RMA wire pinned to the AM
  // protocol (UPCXX_RMA_WIRE=am): every put is a request/ack round served
  // by the target's progress, the latency profile of a conduit without
  // cross-mapped segments. Reported alongside the direct wire in
  // BENCH_JSON so both series track across PRs.
  struct AmRow {
    std::size_t size;
    double us;
  };
  static std::vector<AmRow> am_rows;
  gex::Config amcfg = gex::Config::from_env();
  amcfg.ranks = 2;
  amcfg.rma_wire = gex::RmaWire::kAm;
  fails = upcxx::run(amcfg, [] {
    const int me = upcxx::rank_me();
    constexpr std::size_t kMax = 4 << 20;
    auto seg = upcxx::allocate<char>(kMax);
    upcxx::dist_object<upcxx::global_ptr<char>> dir(seg);
    auto peer = dir.fetch(1 - me).wait();
    std::vector<char> src(kMax, 'z');
    upcxx::barrier();
    for (std::size_t size = 8; size <= kMax; size <<= 2) {
      const int iters = size <= 4096 ? 1000 : (size <= 262144 ? 150 : 15);
      const int trials = benchutil::reps(6, 2);
      double best = 1e30;
      for (int t = 0; t < trials; ++t) {
        if (me == 0)
          best = std::min(best, upcxx_latency(peer, src.data(), size,
                                              iters));
        upcxx::barrier();  // rank 1 serves the put requests meanwhile
      }
      if (me == 0) am_rows.push_back({size, best * 1e6});
    }
    upcxx::barrier();
    upcxx::deallocate(seg);
  });
  if (fails) return 2;

  // ---- transport=socket series ---------------------------------------------
  // The am-wire sweep again with the records framed onto loopback TCP
  // (UPCXX_AM_TRANSPORT=socket): each put request and its ack cross the
  // kernel socket layer — the latency profile of a genuinely
  // no-shared-memory deployment, reported as its own BENCH_JSON series.
  static std::vector<AmRow> socket_rows;
  gex::Config sockcfg = gex::Config::from_env();
  sockcfg.ranks = 2;
  sockcfg.rma_wire = gex::RmaWire::kAm;
  sockcfg.am_transport = gex::AmTransport::kSocket;
  fails = upcxx::run(sockcfg, [] {
    const int me = upcxx::rank_me();
    constexpr std::size_t kMax = 4 << 20;
    auto seg = upcxx::allocate<char>(kMax);
    upcxx::dist_object<upcxx::global_ptr<char>> dir(seg);
    auto peer = dir.fetch(1 - me).wait();
    std::vector<char> src(kMax, 'w');
    upcxx::barrier();
    for (std::size_t size = 8; size <= kMax; size <<= 2) {
      const int iters = size <= 4096 ? 500 : (size <= 262144 ? 75 : 8);
      const int trials = benchutil::reps(6, 2);
      double best = 1e30;
      for (int t = 0; t < trials; ++t) {
        if (me == 0)
          best = std::min(best, upcxx_latency(peer, src.data(), size,
                                              iters));
        upcxx::barrier();  // rank 1 serves the put requests meanwhile
      }
      if (me == 0) socket_rows.push_back({size, best * 1e6});
    }
    upcxx::barrier();
    upcxx::deallocate(seg);
  });
  if (fails) return 2;

  std::printf("%10s %14s %14s %10s %14s %14s\n", "size", "UPC++ (us)",
              "MPI RMA (us)", "MPI/UPC++", "UPC++ am (us)",
              "socket (us)");
  double small_gain = 0, mid_gain = 0;
  int small_n = 0, mid_n = 0;
  benchutil::JsonReport json("fig3_rma_latency");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    std::printf("%10s %14.3f %14.3f %9.2fx %14.3f %14.3f\n",
                benchutil::human_size(r.size).c_str(), r.upcxx_us, r.mpi_us,
                r.mpi_us / r.upcxx_us, am_rows[i].us, socket_rows[i].us);
    const std::string sz = std::to_string(r.size);
    json.metric("us_direct_" + sz, r.upcxx_us);
    json.metric("us_mpi_" + sz, r.mpi_us);
    json.metric("us_am_" + sz, am_rows[i].us);
    json.metric("us_socket_" + sz, socket_rows[i].us);
    if (r.size < 256) {
      small_gain += (r.mpi_us - r.upcxx_us) / r.mpi_us;
      ++small_n;
    } else if (r.size <= 1024) {
      mid_gain += (r.mpi_us - r.upcxx_us) / r.mpi_us;
      ++mid_n;
    }
  }
  std::printf("\nPaper: UPC++ latency better than MPI RMA: >5%% average "
              "below 256B, >25%% average for 256B-1KB; advantage persists "
              "through 4MB.\n");
  std::printf(
      "Wire note: on a ~30ns memcpy wire the measured gap is pure software "
      "path\n(zero-allocation PGAS fast path vs MPI window/epoch/request "
      "bookkeeping);\nmagnitudes are noisier than the paper's NIC regime, "
      "so the mid-range check\naccepts any positive average advantage.\n");
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "measured mean UPC++ advantage: %+.1f%% below 256B, "
                "%+.1f%% for 256B-1KB",
                100 * small_gain / std::max(small_n, 1),
                100 * mid_gain / std::max(mid_n, 1));
  checks.note(buf);
  checks.expect(small_n > 0 && small_gain / small_n > 0.05,
                "UPC++ wins >5% on average below 256B (paper: >5%)");
  checks.expect(mid_n > 0 && mid_gain / mid_n > 0.0,
                "UPC++ wins on average for 256B-1KB (paper: >25%)");
  checks.expect(rows.back().upcxx_us <= rows.back().mpi_us * 1.05,
                "advantage (or parity) persists at 4MB");
  std::snprintf(buf, sizeof buf,
                "am wire: %.3f us at 8B vs %.3f us direct (request/ack "
                "round through target progress)",
                am_rows.front().us, rows.front().upcxx_us);
  checks.note(buf);
  checks.expect(am_rows.back().us > 0 && am_rows.front().us > 0,
                "am-wire series measured at every size");
  std::snprintf(buf, sizeof buf,
                "socket transport: %.3f us at 8B (request/ack round through "
                "loopback TCP) vs %.3f us on the shared ring",
                socket_rows.front().us, am_rows.front().us);
  checks.note(buf);
  checks.expect(socket_rows.back().us > 0 && socket_rows.front().us > 0,
                "socket-transport series measured at every size");
  json.write();
  return checks.summary("fig3_rma_latency");
}
