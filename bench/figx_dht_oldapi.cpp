// E7 ablation (paper §V-A): DHT insertion, v1.0 chained-asynchronous insert
// vs the v0.1 reconstruction (blocking remote allocation + blocking RMA).
//
// The paper argues the v0.1 idioms "incur both a blocking remote allocation
// and a blocking RMA, which negatively impact latency performance and
// overlap potential", and require ~50% more code. We measure per-insert
// latency and pipelined (overlapped) throughput for both.
#include <cstdio>
#include <string>
#include <vector>

#include "apps/dht/dht.hpp"
#include "arch/rng.hpp"
#include "arch/timer.hpp"
#include "bench_util.hpp"

namespace {
std::string make_key(arch::Xoshiro256& rng) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(rng.next()));
  return std::string(buf, 16);
}
}  // namespace

int main() {
  std::printf(
      "Ablation §V-A — DHT insert: v1.0 chained async vs v0.1 blocking "
      "idioms (4 ranks)\n\n");
  struct Row {
    std::size_t vs;
    double v10_us, v01_us, v10_pipe_us;
  };
  static std::vector<Row> rows;

  gex::Config cfg = gex::Config::from_env();
  cfg.ranks = 4;
  cfg.segment_bytes = 256 << 20;
  // Blocking cost only matters on a wire with latency: simulate an
  // Aries-like 2 us hop so the v0.1 extra round trips and the v1.0 overlap
  // potential are visible (on the raw memcpy wire every blocking call is
  // nearly free and the comparison degenerates).
  cfg.sim_latency_ns = 2000;
  const int iters = static_cast<int>(400 * benchutil::work_scale()) + 50;
  int fails = upcxx::run(cfg, [iters] {
    for (std::size_t vs : {64u, 1024u, 8192u}) {
      dht::RpcRmaMap v10;
      dht::OldApiMap v01;
      upcxx::barrier();
      arch::Xoshiro256 rng(77 + upcxx::rank_me());
      const std::string value(vs, 'q');

      // Blocking per-insert latency, v1.0.
      upcxx::barrier();
      double t0 = arch::now_s();
      for (int i = 0; i < iters; ++i) v10.insert(make_key(rng), value).wait();
      double lat10 = (arch::now_s() - t0) / iters;
      upcxx::barrier();

      // Blocking per-insert latency, v0.1 (inherently blocking).
      t0 = arch::now_s();
      for (int i = 0; i < iters; ++i) v01.insert(make_key(rng), value);
      double lat01 = (arch::now_s() - t0) / iters;
      upcxx::barrier();

      // Pipelined v1.0: conjoin futures, wait once (overlap potential the
      // v0.1 API cannot express).
      t0 = arch::now_s();
      {
        upcxx::promise<> all;
        for (int i = 0; i < iters; ++i) {
          all.require_anonymous(1);
          v10.insert(make_key(rng), value).then([all]() mutable {
            all.fulfill_anonymous(1);
          });
          if (!(i % 8)) upcxx::progress();
        }
        all.finalize().wait();
      }
      double pipe10 = (arch::now_s() - t0) / iters;
      upcxx::barrier();

      // Report the slowest rank (they all insert concurrently).
      lat10 = upcxx::reduce_all(lat10, upcxx::op_fast_max{}).wait();
      lat01 = upcxx::reduce_all(lat01, upcxx::op_fast_max{}).wait();
      pipe10 = upcxx::reduce_all(pipe10, upcxx::op_fast_max{}).wait();
      if (upcxx::rank_me() == 0)
        rows.push_back({vs, lat10 * 1e6, lat01 * 1e6, pipe10 * 1e6});
      upcxx::barrier();
    }
  });
  if (fails) return 2;

  std::printf("%8s %16s %16s %20s\n", "value", "v1.0 block (us)",
              "v0.1 block (us)", "v1.0 pipelined (us)");
  for (auto& r : rows)
    std::printf("%8s %16.2f %16.2f %20.2f\n",
                benchutil::human_size(r.vs).c_str(), r.v10_us, r.v01_us,
                r.v10_pipe_us);

  benchutil::ShapeChecks checks;
  std::printf(
      "\nPaper: v0.1's blocking allocation + blocking RMA hurt latency and "
      "eliminate overlap; v1.0's fully asynchronous insert is simpler and "
      "faster.\n");
  bool overlap_wins_somewhere = false;
  for (auto& r : rows) {
    checks.expect(r.v10_us <= r.v01_us,
                  benchutil::human_size(r.vs) +
                      ": v1.0 blocking insert at least as fast as v0.1");
    overlap_wins_somewhere |= (r.v10_pipe_us < r.v10_us);
    char buf[128];
    std::snprintf(buf, sizeof buf, "%s: pipelined %.2fus vs blocking %.2fus",
                  benchutil::human_size(r.vs).c_str(), r.v10_pipe_us,
                  r.v10_us);
    checks.note(buf);
  }
  // Overlap is a latency-regime effect: tiny values are dominated by
  // per-op software overhead and huge values by flow control, so we assert
  // the paper's claim where it applies — some latency-bound size must
  // benefit from pipelining.
  checks.expect(overlap_wins_somewhere,
                "pipelining beats blocking inserts in the latency-bound "
                "regime");
  return checks.summary("figx_dht_oldapi");
}
