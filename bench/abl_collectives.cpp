// Ablation — collective topology: binary tree (the engine default) versus a
// flat star rooted at rank 0. The tradeoff the engine design encodes:
//   * per-hop latency: the star finishes a barrier in ~2 hops regardless of
//     P, the tree needs ~2·ceil(log2 P) hops — so under wire latency the
//     star wins on latency at any fixed P;
//   * per-message software overhead: the star root injects/retires P-1
//     messages serially, the tree bounds any rank at 2 children — so the
//     star's cost grows linearly in P while the tree's critical path grows
//     logarithmically, which is why scalable runtimes (and this engine)
//     default to trees (the paper's scalability principle, §I).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "arch/timer.hpp"
#include "bench_util.hpp"
#include "upcxx/upcxx.hpp"

namespace {

// Best-of-5 blocks: spin-synchronized collectives at 16 threads are very
// sensitive to transient scheduler noise; the minimum over blocks is the
// stable cost of the topology.
double time_barriers_us(int iters) {
  double best = 1e30;
  for (int rep = 0; rep < 5; ++rep) {
    upcxx::barrier();
    const double t0 = arch::now_s();
    for (int i = 0; i < iters / 5 + 1; ++i) upcxx::barrier();
    best = std::min(best, (arch::now_s() - t0) / (iters / 5 + 1) * 1e6);
  }
  return best;
}

double time_reduce_us(int iters) {
  double best = 1e30;
  for (int rep = 0; rep < 5; ++rep) {
    upcxx::barrier();
    const double t0 = arch::now_s();
    for (int i = 0; i < iters / 5 + 1; ++i)
      upcxx::reduce_all(static_cast<long>(i), upcxx::op_fast_add{}).wait();
    best = std::min(best, (arch::now_s() - t0) / (iters / 5 + 1) * 1e6);
  }
  return best;
}

struct Cell {
  double barrier_us, reduce_us;
};

Cell run_config(int ranks, upcxx::detail::CollTopology topo,
                std::uint64_t latency_ns, int iters) {
  static Cell out;
  gex::Config cfg = gex::Config::from_env();
  cfg.ranks = ranks;
  cfg.sim_latency_ns = latency_ns;
  upcxx::run(cfg, [&] {
    upcxx::experimental::set_coll_topology(topo);
    const double b = time_barriers_us(iters);
    const double r = time_reduce_us(iters);
    upcxx::experimental::set_coll_topology(
        upcxx::detail::CollTopology::tree);
    if (upcxx::rank_me() == 0) out = {b, r};
    upcxx::barrier();
  });
  return out;
}

}  // namespace

int main() {
  std::printf("Ablation — collective topology (tree vs flat star)\n\n");
  benchutil::ShapeChecks checks;
  const int iters = benchutil::reps(2000, 100);
  const auto ranks = benchutil::rank_sweep(16);

  std::printf("-- software-overhead regime (zero wire latency) --\n");
  std::printf("%6s %14s %14s %14s %14s\n", "ranks", "tree barrier",
              "flat barrier", "tree reduce", "flat reduce");
  std::vector<double> tree_b, flat_b;
  for (int P : ranks) {
    // The largest point is measured twice in fresh SPMD regions (thread
    // placement re-rolls) and the minimum kept: 16 spinning ranks on a
    // shared box occasionally draw a pathological schedule.
    const int probes = P == ranks.back() ? 2 : 1;
    Cell t{1e30, 1e30}, f{1e30, 1e30};
    for (int q = 0; q < probes; ++q) {
      const Cell tq =
          run_config(P, upcxx::detail::CollTopology::tree, 0, iters);
      const Cell fq =
          run_config(P, upcxx::detail::CollTopology::flat, 0, iters);
      t = {std::min(t.barrier_us, tq.barrier_us),
           std::min(t.reduce_us, tq.reduce_us)};
      f = {std::min(f.barrier_us, fq.barrier_us),
           std::min(f.reduce_us, fq.reduce_us)};
    }
    tree_b.push_back(t.barrier_us);
    flat_b.push_back(f.barrier_us);
    std::printf("%6d %12.2fus %12.2fus %12.2fus %12.2fus\n", P, t.barrier_us,
                f.barrier_us, t.reduce_us, f.reduce_us);
  }

  std::printf("\n-- latency regime (2us/hop, Aries-like) --\n");
  std::printf("%6s %14s %14s\n", "ranks", "tree barrier", "flat barrier");
  double tree_lat8 = 0, flat_lat8 = 0;
  const int lat_iters = benchutil::reps(200, 20);
  for (int P : ranks) {
    if (P < 2) continue;
    const Cell t =
        run_config(P, upcxx::detail::CollTopology::tree, 2000, lat_iters);
    const Cell f =
        run_config(P, upcxx::detail::CollTopology::flat, 2000, lat_iters);
    std::printf("%6d %12.2fus %12.2fus\n", P, t.barrier_us, f.barrier_us);
    if (P == 8) {
      // Compare at P=8: large enough for a 3-level tree (6 hops vs the
      // star's 2), small enough that 8 spinning ranks do not contend for
      // cores with themselves (which dominates P=16 on a shared box).
      tree_lat8 = t.barrier_us;
      flat_lat8 = f.barrier_us;
    }
  }

  // Shape checks. Latency regime: tree depth costs hops, so at P>=8 the
  // star must beat the tree on a latency-dominated wire.
  if (flat_lat8 > 0)
    checks.expect(flat_lat8 < tree_lat8,
                  "latency regime: flat star beats tree at P>=8 "
                  "(2 hops vs 2*log2(P) hops)");
  // Software-overhead regime: the star's root serializes P-1 message
  // handlings (linear critical path) vs the tree's logarithmic one, so by
  // the largest P the star must have lost its small-P advantage — the
  // crossover that makes trees the scalable default.
  if (ranks.size() >= 3 && ranks.back() >= 16) {
    checks.note("barrier at P=" + std::to_string(ranks.back()) + ": tree " +
                std::to_string(tree_b.back()) + "us, flat " +
                std::to_string(flat_b.back()) + "us");
    checks.expect(flat_b.back() > tree_b.back() * 0.8,
                  "overhead regime: star's linear root cost has caught the "
                  "tree by the largest P (crossover)");
  }
  return checks.summary("abl_collectives");
}
