// Micro — personas and cross-thread LPCs (paper §III: no hidden threads;
// the persona API lets applications build their own progress thread).
//
// Measures:
//   1. self-LPC throughput (enqueue + drain on one thread) — the progress
//      engine's baseline callback cost;
//   2. cross-thread lpc_ff throughput, 1 and 4 producers into one inbox —
//      the handoff cost a progress-thread design pays per message;
//   3. lpc round-trip latency (value shipped to another thread's persona
//      and the result shipped back);
//   4. attentiveness: RPC servicing rate at a rank that is busy computing,
//      with and without a dedicated progress thread holding the master
//      persona — the §III stall the persona pattern exists to avoid.
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "arch/timer.hpp"
#include "bench_util.hpp"
#include "upcxx/upcxx.hpp"

namespace {

std::atomic<long> g_hits{0};

}  // namespace

int main() {
  std::printf("Micro — personas / cross-thread LPC\n\n");
  benchutil::ShapeChecks checks;
  benchutil::JsonReport json("micro_persona");
  const int n = static_cast<int>(200000 * benchutil::work_scale());

  // ---------------------------------------------------------- 1. self-LPC
  upcxx::run(1, [&] {
    long sink = 0;
    const double t0 = arch::now_s();
    for (int i = 0; i < n; ++i) {
      upcxx::current_persona().lpc_ff([&sink, i] { sink += i; });
      if ((i & 255) == 0) upcxx::progress();
    }
    while (sink < static_cast<long>(n) * (n - 1) / 2) upcxx::progress();
    const double dt = arch::now_s() - t0;
    std::printf("self-LPC:            %8.1f ns/op (%d ops)\n", dt / n * 1e9,
                n);
    json.metric("self_lpc_ns", dt / n * 1e9);
  });

  // ------------------------------------------- 2. cross-thread throughput
  // Producer series 1 -> N: contention on one inbox as app threads scale.
  for (int producers : {1, 2, 4}) {
    upcxx::run(1, [&] {
      std::atomic<long> done{0};
      upcxx::persona& master = upcxx::master_persona();
      const int per = n / producers;
      const double t0 = arch::now_s();
      std::vector<std::thread> ts;
      for (int p = 0; p < producers; ++p)
        ts.emplace_back([&master, &done, per] {
          for (int i = 0; i < per; ++i)
            master.lpc_ff([&done] {
              done.fetch_add(1, std::memory_order_relaxed);
            });
        });
      while (done.load(std::memory_order_relaxed) <
             static_cast<long>(per) * producers)
        upcxx::progress();
      for (auto& t : ts) t.join();
      const double dt = arch::now_s() - t0;
      const double total = static_cast<double>(per) * producers;
      std::printf("cross-thread lpc_ff: %8.1f ns/op (%d producer%s)\n",
                  dt / total * 1e9, producers, producers > 1 ? "s" : "");
      json.metric("xthread_lpc_ff_ops_per_s_p" + std::to_string(producers),
                  total / dt);
    });
  }

  // ------------------------------------------------ 3. round-trip latency
  upcxx::run(1, [&] {
    upcxx::persona& master = upcxx::master_persona();
    std::atomic<bool> stop{false};
    std::atomic<double> rt_us{0};
    std::thread worker([&] {
      const int iters = std::max(n / 100, 1000);
      // Warm.
      master.lpc([] { return 1; }).wait();
      const double t0 = arch::now_s();
      for (int i = 0; i < iters; ++i) master.lpc([i] { return i; }).wait();
      rt_us = (arch::now_s() - t0) / iters * 1e6;
      stop = true;
    });
    while (!stop.load()) upcxx::progress();
    worker.join();
    std::printf("lpc round trip:      %8.2f us (worker <-> master)\n",
                rt_us.load());
    json.metric("lpc_round_trip_us", rt_us.load());
  });

  // ----------------------------------------------------- 4. attentiveness
  // Rank 1 computes in kSliceUs bursts; rank 0 fires RPCs at it and counts
  // completions in a fixed window. With the master persona migrated to a
  // progress thread, servicing no longer waits for compute-loop breaks.
  constexpr double kWindowS = 0.5;
  constexpr int kSliceUs = 200;
  static double rate_single = 0, rate_progress_thread = 0;

  auto attentiveness = [&](bool dedicated) {
    upcxx::run(2, [&] {
      const int me = upcxx::rank_me();
      g_hits = 0;
      upcxx::barrier();
      if (me == 0) {
        const double t0 = arch::now_s();
        long sent = 0, acked = 0;
        upcxx::promise<> pr;
        while (arch::now_s() - t0 < kWindowS) {
          upcxx::rpc(1, [] { g_hits.fetch_add(1); })
              .then([&acked] { ++acked; });
          ++sent;
          upcxx::progress();
        }
        while (acked < sent) upcxx::progress();
        const double rate = acked / kWindowS;
        if (dedicated)
          rate_progress_thread = rate;
        else
          rate_single = rate;
        upcxx::rpc_ff(1, [] { g_hits.store(-1); });  // stop signal
        upcxx::barrier();
      } else {
        if (dedicated) {
          upcxx::persona& master = upcxx::master_persona();
          upcxx::liberate_master_persona();
          std::thread comms([&master] {
            upcxx::persona_scope sc(master);
            while (g_hits.load(std::memory_order_relaxed) >= 0)
              upcxx::progress();
          });
          // Compute loop: never calls progress.
          double sink = 0;
          while (g_hits.load(std::memory_order_relaxed) >= 0) {
            const double t = arch::now_s();
            while ((arch::now_s() - t) * 1e6 < kSliceUs) sink += 1e-9;
          }
          comms.join();
          new upcxx::persona_scope(master);
          upcxx::barrier();
        } else {
          // Single-threaded: progress only between compute slices.
          double sink = 0;
          while (g_hits.load(std::memory_order_relaxed) >= 0) {
            const double t = arch::now_s();
            while ((arch::now_s() - t) * 1e6 < kSliceUs) sink += 1e-9;
            upcxx::progress();
          }
          upcxx::barrier();
        }
      }
    });
  };
  attentiveness(false);
  attentiveness(true);
  std::printf(
      "attentiveness:       %8.0f rpc/s single-thread (progress every "
      "%dus)\n                     %8.0f rpc/s with progress thread\n",
      rate_single, kSliceUs, rate_progress_thread);
  json.metric("attentive_rpc_per_s_single", rate_single);
  json.metric("attentive_rpc_per_s_progress_thread", rate_progress_thread);
  json.write();
  if (benchutil::under_tsan())
    checks.note("TSan build: progress-thread lift " +
                std::to_string(rate_progress_thread / rate_single) +
                "x reported, not enforced");
  else
    checks.expect(rate_progress_thread > rate_single * 1.5,
                  "dedicated progress thread lifts RPC service rate >=1.5x "
                  "at an inattentive rank (paper SIII stall)");

  return checks.summary("micro_persona");
}
